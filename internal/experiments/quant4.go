package experiments

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/monitor"
	"epajsrm/internal/policy"
	"epajsrm/internal/power"
	"epajsrm/internal/report"
	"epajsrm/internal/runner"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

// E15Topology validates survey Q6's claim: topology-aware allocation
// indirectly improves energy by improving performance. The same workload
// runs with first-fit (oblivious), always-compact, and the joint policy
// (compact for communication-heavy jobs, scatter for power-hungry ones);
// compact placement shortens communication-bound runtimes, scatter lowers
// the worst per-PDU draw.
func E15Topology(seed uint64) Result {
	// Part A — a deterministically fragmented machine: blockers hold the
	// first half of rack 0, all of rack 1, and the first half of rack 2,
	// leaving free nodes in racks 0, 2 and 3. A 16-node communication-heavy
	// job placed first-fit lands across racks 0+2 (span 3: two PDUs); the
	// compact strategy takes rack 3 whole (span 1). The runtime difference
	// is the Q6 effect in isolation.
	runA := func(s cluster.Strategy) (float64, float64) {
		m := stdMgr(seed, 0, nil)
		m.OnPlacement(func(m *core.Manager, j *jobs.Job) (cluster.Strategy, bool) { return s, true })
		mkBlock := func(id int64, nodes []int) {
			// Pin blockers to exact nodes via a one-shot filter.
			want := map[int]bool{}
			for _, n := range nodes {
				want[n] = true
			}
			j := &jobs.Job{ID: id, User: "b", Nodes: len(nodes), Walltime: 12 * simulator.Hour,
				TrueRuntime: 10 * simulator.Hour, PowerPerNodeW: 150, MemFrac: 0.5}
			m.OnNodeFilter(func(m *core.Manager, jj *jobs.Job, n *cluster.Node) bool {
				if jj.ID != id {
					return true
				}
				return want[n.ID]
			})
			if err := m.Submit(j, 0); err != nil {
				panic(err)
			}
		}
		var r0, r1, r2 []int
		for i := 0; i < 8; i++ {
			r0 = append(r0, i)
			r2 = append(r2, 32+i)
		}
		for i := 16; i < 32; i++ {
			r1 = append(r1, i)
		}
		mkBlock(101, r0)
		mkBlock(102, r1)
		mkBlock(103, r2)

		j := &jobs.Job{ID: 1, User: "u", Nodes: 16, Walltime: 6 * simulator.Hour,
			TrueRuntime: simulator.Hour, PowerPerNodeW: 300, MemFrac: 0.2, CommFrac: 0.6}
		if err := m.Submit(j, 10); err != nil {
			panic(err)
		}
		m.Run(-1)
		return float64(j.End - j.Start), j.EnergyJ / 3.6e6
	}
	// Part B declared below; both parts' runs execute on the worker pool.
	// Part B — one hungry 32-node job on an empty machine: compact loads a
	// single PDU with the whole job; scatter splits it across both.
	runB := func(s cluster.Strategy) float64 {
		m := stdMgr(seed, 0, nil)
		m.OnPlacement(func(m *core.Manager, j *jobs.Job) (cluster.Strategy, bool) { return s, true })
		j := &jobs.Job{ID: 1, User: "u", Nodes: 32, Walltime: 2 * simulator.Hour,
			TrueRuntime: simulator.Hour, PowerPerNodeW: 350, MemFrac: 0.1}
		if err := m.Submit(j, 0); err != nil {
			panic(err)
		}
		maxPDU := 0.0
		m.Eng.After(1, "probe", func(simulator.Time) {
			_, maxPDU = m.Cl.PDUPower(m.Pw.NodePower)
		})
		m.Run(-1)
		return maxPDU
	}
	type cell struct{ rt, e, pdu float64 }
	cells := runner.Map(4, func(k int) cell {
		switch k {
		case 0:
			rt, e := runA(cluster.PlaceFirstFit)
			return cell{rt: rt, e: e}
		case 1:
			rt, e := runA(cluster.PlaceCompact)
			return cell{rt: rt, e: e}
		case 2:
			return cell{pdu: runB(cluster.PlaceCompact)}
		default:
			return cell{pdu: runB(cluster.PlaceScatter)}
		}
	})
	rtObl, eObl := cells[0].rt, cells[0].e
	rtCompact, eCompact := cells[1].rt, cells[1].e
	pduCompact, pduScatter := cells[2].pdu, cells[3].pdu

	tbl := report.Table{
		Header: []string{"scenario", "metric", "oblivious", "topology-aware"},
		Rows: [][]string{
			{"fragmented machine, comm-heavy 16-node job", "runtime", simulator.Time(rtObl).String(), simulator.Time(rtCompact).String()},
			{"fragmented machine, comm-heavy 16-node job", "job energy (kWh)", fmt.Sprintf("%.2f", eObl), fmt.Sprintf("%.2f", eCompact)},
			{"hungry 32-node job, empty machine", "max PDU draw (kW)", fmtW(pduCompact) + " (compact)", fmtW(pduScatter) + " (scatter)"},
		},
	}
	return Result{
		ID:    "E15",
		Title: "Topology-aware task allocation (survey Q6)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("compact placement cut the comm-heavy job's runtime %s and its energy %s — the Q6 'indirect energy improvement'",
				fmtPct(1-rtCompact/rtObl), fmtPct(1-eCompact/eObl)),
			fmt.Sprintf("scattering the hungry job cut the worst PDU draw %s", fmtPct(1-pduScatter/pduCompact)),
		},
		Values: map[string]float64{
			"rt_oblivious": rtObl,
			"rt_compact":   rtCompact,
			"e_oblivious":  eObl,
			"e_compact":    eCompact,
			"pdu_compact":  pduCompact,
			"pdu_scatter":  pduScatter,
		},
	}
}

// E16CapabilityWindow validates RIKEN's "3 days for large jobs each
// month": wide jobs concentrate into the window (their power ramps land on
// planned days), small jobs keep the machine busy the rest of the month.
func E16CapabilityWindow(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 400
	spec.MaxNodes = 64
	spec.CapabilityFrac = 0.20
	horizon := 65 * simulator.Day
	n := 900

	p := &policy.CapabilityWindow{WideNodes: 32, WindowDays: 3, MonthDays: 30, HoldWideOutside: true}
	m := stdMgr(seed, 0, nil, p)
	feed(m, spec, seed^53, n)

	// Track when wide-job node-seconds execute relative to the window.
	var wideInWindow, wideOutside float64
	m.Eng.Every(10*simulator.Minute, "probe", func(now simulator.Time) {
		wide := 0
		for _, j := range m.Running() {
			if j.Nodes >= 32 {
				wide += j.Nodes
			}
		}
		if p.InWindow(now) {
			wideInWindow += float64(wide)
		} else {
			wideOutside += float64(wide)
		}
	})
	m.Run(horizon)

	frac := 1.0
	if wideInWindow+wideOutside > 0 {
		frac = wideInWindow / (wideInWindow + wideOutside)
	}
	tbl := report.Table{
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"window", fmt.Sprintf("%d days of every %d", p.WindowDays, p.MonthDays)},
			{"wide-job node-time inside window", fmtPct(frac)},
			{"small jobs held during window", fmt.Sprint(p.HeldSmall)},
			{"wide jobs held outside window", fmt.Sprint(p.HeldWide)},
			{"completed", fmt.Sprint(m.Metrics.Completed)},
		},
	}
	return Result{
		ID:    "E16",
		Title: "Monthly capability window for large jobs (RIKEN production)",
		Table: tbl,
		Notes: []string{"wide jobs execute (almost) exclusively inside the planned days; the window fraction of the calendar is 10%"},
		Values: map[string]float64{
			"wide_in_window_frac": frac,
			"completed":           float64(m.Metrics.Completed),
		},
	}
}

// E17RampLimit validates the introduction's motivation about power
// fluctuation rates: the ramp limiter bounds the steepest power rise at a
// small wait cost.
func E17RampLimit(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 250
	horizon := 3 * simulator.Day
	n := 300
	window := 5 * simulator.Minute

	run := func(name string, pols ...core.Policy) (string, float64, float64) {
		m := stdMgr(seed, 0, nil, pols...)
		feed(m, spec, seed^59, n)
		var series []float64
		m.Eng.Every(30*simulator.Second, "probe", func(simulator.Time) {
			series = append(series, m.Pw.TotalPower())
		})
		m.Run(horizon)
		worst := 0.0
		k := int(window / (30 * simulator.Second))
		for i := k; i < len(series); i++ {
			if rise := series[i] - series[i-k]; rise > worst {
				worst = rise
			}
		}
		return name, worst, m.Metrics.Waits.Median()
	}

	type cell struct {
		name       string
		ramp, wait float64
	}
	cells := runner.Map(2, func(k int) cell {
		if k == 0 {
			n, r, w := run("unconstrained")
			return cell{n, r, w}
		}
		n, r, w := run("ramp limit 2 kW / 5 min", &policy.RampLimit{MaxRampW: 2000, Window: window})
		return cell{n, r, w}
	})
	bName, bRamp, bWait := cells[0].name, cells[0].ramp, cells[0].wait
	lName, lRamp, lWait := cells[1].name, cells[1].ramp, cells[1].wait

	tbl := report.Table{
		Header: []string{"configuration", "worst 5-min ramp (kW)", "median wait"},
		Rows: [][]string{
			{bName, fmtW(bRamp), simulator.Time(bWait).String()},
			{lName, fmtW(lRamp), simulator.Time(lWait).String()},
		},
	}
	return Result{
		ID:    "E17",
		Title: "Power ramp-rate limiting (paper §I: power fluctuation rates)",
		Table: tbl,
		Notes: []string{fmt.Sprintf("worst ramp cut %s", fmtPct(1-lRamp/bRamp))},
		Values: map[string]float64{
			"ramp_base":  bRamp,
			"ramp_limit": lRamp,
			"wait_base":  bWait,
			"wait_limit": lWait,
		},
	}
}

// E18CoolingAware validates LRZ's research row: deferring low-priority
// jobs away from inefficient (hot, high-PUE) hours cuts facility energy
// per unit of work even though IT energy is unchanged.
func E18CoolingAware(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 600
	spec.PriorityLevels = 10
	horizon := 6 * simulator.Day
	n := 300
	// Hot climate with strong daily swing so the PUE cycle matters.
	mkFac := func() *power.Facility {
		f := power.DefaultFacility()
		f.Climate = power.Climate{MeanC: 22, SeasonAmpC: 2, DailyAmpC: 10}
		f.PUEPerDegree = 0.02
		return f
	}

	run := func(name string, attach bool) (string, float64, float64, float64) {
		m := traced(core.NewManager(core.Options{
			Cluster:   cluster.DefaultConfig(),
			Scheduler: sched.EASY{},
			Seed:      seed,
			Facility:  mkFac(),
		}))
		if attach {
			m.Use(&policy.CoolingAware{MaxPUE: 1.2, DeferBelowPriority: 7})
		}
		feed(m, spec, seed^61, n)
		// Integrate facility (site) energy: IT * PUE at each minute.
		siteJ := 0.0
		last := simulator.Time(0)
		m.Eng.Every(simulator.Minute, "site-probe", func(now simulator.Time) {
			siteJ += m.Fac.SitePower(now, m.Pw.TotalPower()) * float64(now-last)
			last = now
		})
		m.Run(horizon)
		return name, m.Pw.TotalEnergy() / 3.6e6, siteJ / 3.6e6, m.Metrics.Waits.Median()
	}

	type cell struct {
		name           string
		it, site, wait float64
	}
	cells := runner.Map(2, func(k int) cell {
		if k == 0 {
			n, it, site, w := run("PUE-oblivious", false)
			return cell{n, it, site, w}
		}
		n, it, site, w := run("cooling-aware deferral", true)
		return cell{n, it, site, w}
	})
	bName, bIT, bSite, bWait := cells[0].name, cells[0].it, cells[0].site, cells[0].wait
	cName, cIT, cSite, cWait := cells[1].name, cells[1].it, cells[1].site, cells[1].wait

	tbl := report.Table{
		Header: []string{"configuration", "IT energy (kWh)", "site energy (kWh)", "median wait"},
		Rows: [][]string{
			{bName, fmt.Sprintf("%.0f", bIT), fmt.Sprintf("%.0f", bSite), simulator.Time(bWait).String()},
			{cName, fmt.Sprintf("%.0f", cIT), fmt.Sprintf("%.0f", cSite), simulator.Time(cWait).String()},
		},
	}
	return Result{
		ID:    "E18",
		Title: "Cooling-aware job deferral (LRZ research row)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("site energy cut %s at ~equal IT energy; the saving is pure cooling overhead", fmtPct(1-cSite/bSite)),
		},
		Values: map[string]float64{
			"site_base": bSite,
			"site_cool": cSite,
			"it_base":   bIT,
			"it_cool":   cIT,
			"wait_base": bWait,
			"wait_cool": cWait,
		},
	}
}

// E19Monitoring exercises the hierarchical monitoring substrate at system
// scale: archive consistency and hottest-node detection under load
// (STFC/CINECA production monitoring).
func E19Monitoring(seed uint64) Result {
	m := stdMgr(seed, 0.06, nil)
	col := monitor.NewCollector(m.Cl, m.Pw, monitor.Options{Period: 30 * simulator.Second}).Start(m.Eng)
	alerts := 0
	col.Subscribe(monitor.LevelPDU, -1, 32*330, func(monitor.Alert) { alerts++ })
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 200
	feed(m, spec, seed^67, 300)
	m.Run(2 * simulator.Day)

	sysCh := col.Channel(monitor.LevelSystem, 0)
	hottest := col.HottestNodes(5)
	tbl := report.Table{
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"samples (system channel)", fmt.Sprint(sysCh.Stats.N())},
			{"system mean / max (kW)", fmt.Sprintf("%.1f / %.1f", sysCh.Stats.Mean()/1000, sysCh.Stats.Max()/1000)},
			{"PDU over-limit alerts", fmt.Sprint(alerts)},
			{"hottest nodes (mean draw)", fmt.Sprint(hottest)},
		},
	}
	return Result{
		ID:    "E19",
		Title: "Hierarchical power monitoring: data center, machine, job levels (STFC/CINECA)",
		Table: tbl,
		Notes: []string{"node, rack, PDU and system channels archived at three resolutions"},
		Values: map[string]float64{
			"samples": float64(sysCh.Stats.N()),
			"mean_w":  sysCh.Stats.Mean(),
		},
	}
}
