package experiments

import (
	"fmt"

	"epajsrm/internal/jobs"
	"epajsrm/internal/policy"
	"epajsrm/internal/report"
	"epajsrm/internal/runner"
	"epajsrm/internal/simulator"
	"epajsrm/internal/stats"
	"epajsrm/internal/workload"
)

// E20FairShare validates the "fairness" scheduling goal Q3(d) lists, with
// the EPA twist of charging energy: a machine shared by one heavy user and
// four light users. Without fairshare the heavy user's queue depth
// monopolizes starts; with energy-charged fairshare the light users' waits
// shrink and Jain's index over per-user completed work rises.
func E20FairShare(seed uint64) Result {
	horizon := 4 * simulator.Day

	run := func(withFS bool) (lightSlow, heavySlow, lightWait, heavyWait float64) {
		m := stdMgr(seed, 0, nil)
		if withFS {
			m.Use(&policy.FairShare{HalfLife: simulator.Day, Levels: 5, ChargeEnergy: true})
		}
		var all []*jobs.Job
		// One heavy user floods the queue; four light users trickle.
		spec := workload.DefaultSpec()
		spec.ArrivalMeanSec = 150
		spec.Users = 1
		for i, j := range workload.NewGenerator(spec, seed^71).Generate(600) {
			j.ID = int64(i + 1)
			j.User = "heavy"
			j.Priority = 0
			if err := m.Submit(j, j.Submit); err != nil {
				panic(err)
			}
			all = append(all, j)
		}
		lightSpec := workload.DefaultSpec()
		lightSpec.ArrivalMeanSec = 2400
		for u := 0; u < 4; u++ {
			for i, j := range workload.NewGenerator(lightSpec, seed^uint64(100+u)).Generate(40) {
				j.ID = int64(10000 + u*1000 + i)
				j.User = fmt.Sprintf("light%d", u)
				j.Priority = 0
				if err := m.Submit(j, j.Submit); err != nil {
					panic(err)
				}
				all = append(all, j)
			}
		}
		m.Run(horizon)

		// Fairness here is entitlement-relative: the light users consume a
		// tiny fraction of their fair share, so a fair scheduler should
		// serve them as if the machine were idle (bounded slowdown -> 1).
		// FIFO instead makes them queue behind the flood — everyone equally
		// miserable, which is not fairness.
		var heavySlows, lightSlows, heavyWaits, lightWaits stats.Sample
		for _, j := range all {
			if j.State != jobs.StateCompleted {
				continue
			}
			if j.User == "heavy" {
				heavySlows.Add(j.BoundedSlowdown())
				heavyWaits.Add(float64(j.WaitTime()))
			} else {
				lightSlows.Add(j.BoundedSlowdown())
				lightWaits.Add(float64(j.WaitTime()))
			}
		}
		return lightSlows.Mean(), heavySlows.Mean(), lightWaits.Median(), heavyWaits.Median()
	}

	type cell struct{ ls, hs, lw, hw float64 }
	cells := runner.Map(2, func(k int) cell {
		ls, hs, lw, hw := run(k == 1)
		return cell{ls, hs, lw, hw}
	})
	lsBase, hsBase, lwBase, hwBase := cells[0].ls, cells[0].hs, cells[0].lw, cells[0].hw
	lsFS, hsFS, lwFS, hwFS := cells[1].ls, cells[1].hs, cells[1].lw, cells[1].hw

	tbl := report.Table{
		Header: []string{"configuration", "light mean slowdown", "heavy mean slowdown", "light median wait", "heavy median wait"},
		Rows: [][]string{
			{"no fairshare", fmt.Sprintf("%.1f", lsBase), fmt.Sprintf("%.1f", hsBase),
				simulator.Time(lwBase).String(), simulator.Time(hwBase).String()},
			{"energy fairshare", fmt.Sprintf("%.1f", lsFS), fmt.Sprintf("%.1f", hsFS),
				simulator.Time(lwFS).String(), simulator.Time(hwFS).String()},
		},
	}
	return Result{
		ID:    "E20",
		Title: "Fairness as a scheduling goal, energy-charged (survey Q3d)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("light users' mean slowdown %.1f -> %.1f; their median wait %s -> %s; the flooding user pays %.0f%% more slowdown",
				lsBase, lsFS, simulator.Time(lwBase), simulator.Time(lwFS), 100*(hsFS/hsBase-1)),
		},
		Values: map[string]float64{
			"light_slow_base": lsBase,
			"light_slow_fs":   lsFS,
			"heavy_slow_base": hsBase,
			"heavy_slow_fs":   hsFS,
			"light_base":      lwBase,
			"light_fs":        lwFS,
		},
	}
}
