package experiments

import (
	"strings"
	"testing"
)

// The experiment tests assert the *shape* claims from DESIGN.md's index —
// who wins, roughly by how much, and hard invariants (zero kills, zero
// maintenance violations) — not absolute numbers.

func TestT1T2Exhibits(t *testing.T) {
	t1 := T1TableI()
	if v := t1.Values["rows"]; v != 5 {
		t.Fatalf("Table I rows = %v, want 5", v)
	}
	t2 := T2TableII()
	if v := t2.Values["rows"]; v != 4 {
		t.Fatalf("Table II rows = %v, want 4", v)
	}
	if !strings.Contains(t1.Render(), "KAUST") || !strings.Contains(t2.Render(), "JCAHPC") {
		t.Fatal("exhibit render missing centers")
	}
}

func TestF1F2Exhibits(t *testing.T) {
	f1 := F1ComponentDiagram()
	if f1.Values["policies"] != 3 {
		t.Fatalf("F1 policies = %v", f1.Values["policies"])
	}
	for _, want := range []string{"JOB SCHEDULER", "RESOURCE MANAGER", "MONITORING", "CONTROL PLANE"} {
		if !strings.Contains(f1.Render(), want) {
			t.Fatalf("F1 missing %q", want)
		}
	}
	f2 := F2WorldMap()
	if f2.Values["sites"] != 9 {
		t.Fatalf("F2 sites = %v", f2.Values["sites"])
	}
	if !strings.Contains(f2.Render(), "RIKEN") {
		t.Fatal("F2 legend missing RIKEN")
	}
}

func TestE1StaticCapShape(t *testing.T) {
	r := E1StaticCap(1)
	if r.Values["cap_peak_w"] >= r.Values["base_peak_w"] {
		t.Fatalf("capping did not reduce peak: %v vs %v", r.Values["cap_peak_w"], r.Values["base_peak_w"])
	}
	// Throughput cost bounded: capped config keeps >= 70 % of baseline.
	if r.Values["cap_thr"] < 0.7*r.Values["base_thr"] {
		t.Fatalf("throughput collapsed: %v vs %v", r.Values["cap_thr"], r.Values["base_thr"])
	}
}

func TestE2IdleShutdownShape(t *testing.T) {
	r := E2IdleShutdown(1)
	// Savings grow as load falls.
	if !(r.Values["saved_3600"] > r.Values["saved_400"]) {
		t.Fatalf("savings did not grow with sparsity: %v", r.Values)
	}
	if r.Values["saved_3600"] < 0.3 {
		t.Fatalf("sparse-load savings %v too small", r.Values["saved_3600"])
	}
	// No kills under boot-window capping.
	for _, arr := range []string{"400", "1200", "3600"} {
		if r.Values["kills_"+arr] != 0 {
			t.Fatalf("kills at arrival %s: %v", arr, r.Values["kills_"+arr])
		}
	}
}

func TestE3DVFSShape(t *testing.T) {
	r := E3DVFS()
	// Energy-optimal frequency falls as memory-boundedness rises.
	if !(r.Values["beststar_mem80"] <= r.Values["beststar_mem50"] &&
		r.Values["beststar_mem50"] <= r.Values["beststar_mem0"]) {
		t.Fatalf("optimal frequency not monotone in memory-boundedness: %v", r.Values)
	}
	// Memory-bound job at the lowest frequency saves energy vs nominal.
	if r.Values["min_e_mem80"] >= 1 {
		t.Fatalf("memory-bound deep downclock energy %v >= nominal", r.Values["min_e_mem80"])
	}
}

func TestE4PowerSharingShape(t *testing.T) {
	r := E4PowerSharing(1)
	// Dynamic never loses at any budget, and wins clearly at the tightest.
	for k, v := range r.Values {
		if v < -0.02 {
			t.Fatalf("dynamic sharing lost at %s: %v", k, v)
		}
	}
	if r.Values["gain_9600"] <= 0 {
		t.Fatalf("no gain at the tight budget: %v", r.Values)
	}
}

func TestE5OverprovisionShape(t *testing.T) {
	r := E5Overprovision(1)
	if r.Values["over_thr"] <= r.Values["small_thr"] {
		t.Fatalf("over-provisioning lost: %v", r.Values)
	}
}

func TestE6EmergencyShape(t *testing.T) {
	r := E6Emergency(1)
	if r.Values["kills_nogate"] == 0 {
		t.Fatal("ungated run should overcommit and kill")
	}
	if r.Values["kills_gate"] != 0 {
		t.Fatalf("gated run still killed %v jobs", r.Values["kills_gate"])
	}
	if r.Values["gate_holds"] == 0 {
		t.Fatal("gate never held")
	}
}

func TestE7EnergyTagShape(t *testing.T) {
	r := E7EnergyTag(1)
	if r.Values["energy_job_kwh"] >= r.Values["perf_job_kwh"] {
		t.Fatalf("energy goal did not save energy: %v", r.Values)
	}
	stretch := r.Values["energy_rt"] / r.Values["perf_rt"]
	if stretch > 1.35 {
		t.Fatalf("runtime stretch %v exceeds the 1.3 bound (+margin)", stretch)
	}
}

func TestE8PredictionShape(t *testing.T) {
	r := E8Prediction(1)
	if r.Values["mape_tag-history"] >= r.Values["mape_naive-mean"] {
		t.Fatalf("tag history no better than naive: %v", r.Values)
	}
	if r.Values["mape_regression"] >= r.Values["mape_naive-mean"] {
		t.Fatalf("regression no better than naive: %v", r.Values)
	}
}

func TestE9InterSystemShape(t *testing.T) {
	r := E9InterSystem(1)
	// Day 0: system 1 loaded -> bigger share. Day 1: load moved -> share fell.
	if r.Values["share1_day0"] <= r.Values["budget"]/2 {
		t.Fatalf("loaded system share %v not above half", r.Values["share1_day0"])
	}
	if r.Values["share1_day1"] >= r.Values["share1_day0"] {
		t.Fatalf("share did not follow demand: %v", r.Values)
	}
	if r.Values["combined_peak"] > r.Values["budget"]*1.05 {
		t.Fatalf("joint budget violated: %v", r.Values)
	}
	if r.Values["done1"] == 0 || r.Values["done2"] == 0 {
		t.Fatalf("a system starved: %v", r.Values)
	}
}

func TestE10LayoutShape(t *testing.T) {
	r := E10Layout(1)
	if r.Values["violations"] != 0 {
		t.Fatalf("jobs ran on the serviced PDU: %v node-minutes", r.Values["violations"])
	}
	if r.Values["completed"] == 0 {
		t.Fatal("nothing completed")
	}
}

func TestE11MS3Shape(t *testing.T) {
	r := E11MS3(1)
	if r.Values["summer_busy"] >= r.Values["winter_busy"] {
		t.Fatalf("summer concurrency %v not below winter %v", r.Values["summer_busy"], r.Values["winter_busy"])
	}
	if r.Values["deferrals"] == 0 {
		t.Fatal("MS3 never deferred")
	}
}

func TestE12BackfillShape(t *testing.T) {
	r := E12Backfill(1)
	if r.Values["util_easy"] < r.Values["util_fcfs"] {
		t.Fatalf("EASY utilization below FCFS: %v", r.Values)
	}
	if r.Values["wait_easy"] > r.Values["wait_fcfs"] {
		t.Fatalf("EASY median wait above FCFS: %v", r.Values)
	}
}

func TestE13GridShape(t *testing.T) {
	r := E13GridAware(1)
	base := r.Values["cost_base"] / r.Values["done_base"]
	shift := r.Values["cost_shift"] / r.Values["done_shift"]
	if shift >= base {
		t.Fatalf("peak shifting did not cut cost/job: %.4f vs %.4f", shift, base)
	}
	if r.Values["cost_turb"] >= r.Values["cost_shift"] {
		t.Fatalf("turbine did not cut cost further: %v", r.Values)
	}
}

func TestE14RuntimeBalanceShape(t *testing.T) {
	r := E14RuntimeBalance(1)
	if r.Values["speedup_10"] <= 0 {
		t.Fatalf("no speedup at 10%% variability: %v", r.Values)
	}
	if r.Values["speedup_10"] <= r.Values["speedup_2"] {
		t.Fatalf("speedup should grow with variability: %v", r.Values)
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	rs := All(1)
	if len(rs) != 27 {
		t.Fatalf("results = %d, want 27", len(rs))
	}
	ids := map[string]bool{}
	for _, r := range rs {
		if ids[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
		if r.Render() == "" {
			t.Fatalf("%s renders empty", r.ID)
		}
	}
}

func TestE15TopologyShape(t *testing.T) {
	r := E15Topology(1)
	if r.Values["rt_compact"] >= r.Values["rt_oblivious"] {
		t.Fatalf("compact placement did not cut mean runtime: %v", r.Values)
	}
	// Performance gains translate into energy gains (the Q6 mechanism).
	if r.Values["e_compact"] >= r.Values["e_oblivious"] {
		t.Fatalf("compact placement did not cut energy: %v", r.Values)
	}
	// Scattering the hungry job strictly lowers the worst PDU draw.
	if r.Values["pdu_scatter"] >= r.Values["pdu_compact"] {
		t.Fatalf("scatter did not lower the worst PDU draw: %v", r.Values)
	}
}

func TestE16CapabilityWindowShape(t *testing.T) {
	r := E16CapabilityWindow(1)
	if r.Values["wide_in_window_frac"] < 0.95 {
		t.Fatalf("wide work leaked outside the window: %v", r.Values["wide_in_window_frac"])
	}
	if r.Values["completed"] == 0 {
		t.Fatal("nothing completed")
	}
}

func TestE17RampLimitShape(t *testing.T) {
	r := E17RampLimit(1)
	if r.Values["ramp_limit"] >= r.Values["ramp_base"] {
		t.Fatalf("ramp limiter did not reduce the worst ramp: %v", r.Values)
	}
	if r.Values["ramp_limit"] > 2000*1.2 {
		t.Fatalf("worst ramp %v exceeds the budget by >20%%", r.Values["ramp_limit"])
	}
}

func TestE18CoolingAwareShape(t *testing.T) {
	r := E18CoolingAware(1)
	if r.Values["site_cool"] >= r.Values["site_base"] {
		t.Fatalf("cooling-aware deferral did not cut site energy: %v", r.Values)
	}
	// IT energy roughly unchanged: within 5 %.
	ratio := r.Values["it_cool"] / r.Values["it_base"]
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("IT energy should be ~unchanged, ratio %v", ratio)
	}
}

func TestE19MonitoringShape(t *testing.T) {
	r := E19Monitoring(1)
	if r.Values["samples"] < 1000 {
		t.Fatalf("too few samples: %v", r.Values["samples"])
	}
	if r.Values["mean_w"] <= 0 {
		t.Fatal("no power observed")
	}
}
