package experiments

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/esp"
	"epajsrm/internal/jobs"
	"epajsrm/internal/policy"
	"epajsrm/internal/power"
	"epajsrm/internal/report"
	"epajsrm/internal/runner"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

// E11MS3 reproduces Borghesi et al.'s "do less when it's too hot":
// concurrency tracks outside temperature across the year, holding the
// power/thermal envelope with queue growth instead of kills or DVFS.
func E11MS3(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 300
	p := &policy.MS3{CoolC: 12, HotC: 24, FloorFrac: 0.35}
	m := stdMgr(seed, 0, nil, p)

	// Two bursts: one at the summer peak (day ~91), one in winter (day ~274).
	burst := func(startDay int, seedX uint64) {
		js := workload.NewGenerator(spec, seedX).Generate(80)
		for _, j := range js {
			at := simulator.Time(startDay)*simulator.Day + j.Submit
			if err := m.Submit(j, at); err != nil {
				panic(err)
			}
		}
	}
	burst(91, seed^31)
	burst(274, seed^37)

	var summerBusyMax, winterBusyMax int
	m.Eng.Every(10*simulator.Minute, "probe", func(now simulator.Time) {
		busy := m.Cl.CountState(cluster.StateBusy)
		day := now / simulator.Day
		if day >= 91 && day < 95 && busy > summerBusyMax {
			summerBusyMax = busy
		}
		if day >= 274 && day < 278 && busy > winterBusyMax {
			winterBusyMax = busy
		}
	})
	m.Run(280 * simulator.Day)

	tbl := report.Table{
		Header: []string{"season", "max busy nodes", "allowance at peak"},
		Rows: [][]string{
			{"summer burst (day 91)", fmt.Sprint(summerBusyMax), fmt.Sprint(p.AllowedBusyNodes(92 * simulator.Day))},
			{"winter burst (day 274)", fmt.Sprint(winterBusyMax), fmt.Sprint(p.AllowedBusyNodes(275 * simulator.Day))},
		},
	}
	return Result{
		ID:    "E11",
		Title: "MS3 job-count limiting — do less when it's too hot (Borghesi et al.)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("deferrals: %d; summer concurrency capped below winter", p.Deferrals),
		},
		Values: map[string]float64{
			"summer_busy": float64(summerBusyMax),
			"winter_busy": float64(winterBusyMax),
			"deferrals":   float64(p.Deferrals),
		},
	}
}

// E12Backfill is the power-oblivious baseline sanity check (Mu'alem &
// Feitelson): EASY backfilling beats FCFS on utilization and wait time;
// conservative lands between.
func E12Backfill(seed uint64) Result {
	// Saturating pressure with a wide-job mix: head-of-line blocking is
	// what separates FCFS from the backfilling schedulers.
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 110
	spec.CapabilityFrac = 0.30
	spec.MaxNodes = 64
	horizon := 5 * simulator.Day
	n := 1200
	tbl := report.Table{
		Header: []string{"scheduler", "utilization", "median wait", "mean bounded slowdown", "completed"},
	}
	vals := map[string]float64{}
	schedulers := []sched.Scheduler{sched.FCFS{}, sched.EASY{}, sched.Conservative{}}
	type cell struct {
		util, wait, slow float64
		completed        int
	}
	cells := runner.Map(len(schedulers), func(i int) cell {
		m := stdMgr(seed, 0, schedulers[i])
		feed(m, spec, seed^41, n)
		m.Run(horizon)
		return cell{m.Metrics.Utilization(m.Cl.Size()), m.Metrics.Waits.Median(),
			m.Metrics.Slowdowns.Mean(), m.Metrics.Completed}
	})
	for i, s := range schedulers {
		c := cells[i]
		tbl.Rows = append(tbl.Rows, []string{
			s.Name(), fmtPct(c.util),
			simulator.Time(c.wait).String(),
			fmt.Sprintf("%.2f", c.slow),
			fmt.Sprint(c.completed),
		})
		vals["util_"+s.Name()] = c.util
		vals["wait_"+s.Name()] = c.wait
	}
	return Result{
		ID:     "E12",
		Title:  "Backfilling baseline (Mu'alem & Feitelson): FCFS vs EASY vs conservative",
		Table:  tbl,
		Notes:  []string{"EASY ≥ FCFS on utilization; the EPA policies build on these baselines"},
		Values: vals,
	}
}

// E13GridAware reproduces the ESP-integration scenario (Bates et al.;
// RIKEN's grid vs gas turbine): peak-shifting wide jobs cuts energy cost
// at equal work, and on-site generation absorbs peak-price load.
func E13GridAware(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 300
	horizon := 4 * simulator.Day
	n := 250
	tariff := esp.PeakTariff(0.10, 0.30)

	run := func(peakShift bool, turbine bool) (*core.Manager, *policy.GridAware) {
		prov := &esp.Provider{Tariff: tariff}
		if turbine {
			prov.TurbineCapW = 5e3
			prov.TurbineCostPerKWh = 0.15
		}
		gp := &policy.GridAware{Provider: prov}
		if peakShift {
			gp.PeakMaxNodes = 8
		}
		m := stdMgr(seed, 0, nil, gp)
		feed(m, spec, seed^43, n)
		m.Run(horizon)
		// Close the meter at the horizon.
		gp.Meter.Observe(m.Eng.Now(), 0)
		return m, gp
	}
	cfgs := []struct{ peakShift, turbine bool }{{false, false}, {true, false}, {true, true}}
	type cell struct {
		m *core.Manager
		g *policy.GridAware
	}
	cells := runner.Map(len(cfgs), func(i int) cell {
		m, g := run(cfgs[i].peakShift, cfgs[i].turbine)
		return cell{m, g}
	})
	mBase, gBase := cells[0].m, cells[0].g
	mShift, gShift := cells[1].m, cells[1].g
	mTurb, gTurb := cells[2].m, cells[2].g

	tbl := report.Table{
		Header: []string{"configuration", "energy cost", "grid kWh", "turbine kWh", "completed"},
		Rows: [][]string{
			{"tariff-oblivious", fmt.Sprintf("%.0f", gBase.Meter.Cost), fmt.Sprintf("%.0f", gBase.Meter.GridKWh), "0", fmt.Sprint(mBase.Metrics.Completed)},
			{"peak shifting (wide jobs off-peak)", fmt.Sprintf("%.0f", gShift.Meter.Cost), fmt.Sprintf("%.0f", gShift.Meter.GridKWh), "0", fmt.Sprint(mShift.Metrics.Completed)},
			{"peak shifting + gas turbine", fmt.Sprintf("%.0f", gTurb.Meter.Cost), fmt.Sprintf("%.0f", gTurb.Meter.GridKWh), fmt.Sprintf("%.0f", gTurb.Meter.TurbKWh), fmt.Sprint(mTurb.Metrics.Completed)},
		},
	}
	return Result{
		ID:    "E13",
		Title: "Grid-aware scheduling: tariffs, peak shifting, on-site generation (RIKEN; Bates et al.)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("cost per completed job: %.3f / %.3f / %.3f",
				gBase.Meter.Cost/float64(mBase.Metrics.Completed),
				gShift.Meter.Cost/float64(mShift.Metrics.Completed),
				gTurb.Meter.Cost/float64(mTurb.Metrics.Completed)),
		},
		Values: map[string]float64{
			"cost_base":  gBase.Meter.Cost,
			"cost_shift": gShift.Meter.Cost,
			"cost_turb":  gTurb.Meter.Cost,
			"done_base":  float64(mBase.Metrics.Completed),
			"done_shift": float64(mShift.Metrics.Completed),
		},
	}
}

// E14RuntimeBalance reproduces the GEOPM claim (Eastep et al.): under a
// job-level power budget and manufacturing variability, critical-path
// power balancing beats a uniform split on time-to-solution.
func E14RuntimeBalance(seed uint64) Result {
	tbl := report.Table{
		Header: []string{"variability sigma", "uniform split runtime", "critical-path runtime", "speedup"},
	}
	vals := map[string]float64{}
	sigmas := []float64{0.02, 0.05, 0.10}
	modes := [2]policy.BalanceMode{policy.BalanceUniform, policy.BalanceCritical}
	// Run index 2i is the uniform split at sigmas[i]; 2i+1 critical-path.
	times := runner.Map(2*len(sigmas), func(k int) simulator.Time {
		m := traced(core.NewManager(core.Options{
			Cluster:   cluster.DefaultConfig(),
			Scheduler: sched.EASY{},
			Seed:      seed,
			VarSigma:  sigmas[k/2],
		}))
		m.Use(&policy.RuntimeBalance{JobBudgetPerNodeW: 280, Mode: modes[k%2]})
		j := &jobs.Job{
			ID: 1, User: "u", Tag: "t", Nodes: 32,
			Walltime: 24 * simulator.Hour, TrueRuntime: 2 * simulator.Hour,
			PowerPerNodeW: 360, MemFrac: 0.1,
		}
		if err := m.Submit(j, 0); err != nil {
			panic(err)
		}
		m.Run(-1)
		return j.End - j.Start
	})
	for i, sigma := range sigmas {
		tu, tc := times[2*i], times[2*i+1]
		speedup := float64(tu)/float64(tc) - 1
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f%%", sigma*100), tu.String(), tc.String(), fmtPct(speedup),
		})
		vals[fmt.Sprintf("speedup_%.0f", sigma*100)] = speedup
	}
	return Result{
		ID:     "E14",
		Title:  "Intra-job power balancing under variability (GEOPM; Eastep et al.)",
		Table:  tbl,
		Notes:  []string{"speedup grows with manufacturing variability — uniform splits waste budget on efficient nodes"},
		Values: vals,
	}
}

var _ = power.DefaultNodeModel
