package experiments

import (
	"fmt"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/jobs"
	"epajsrm/internal/policy"
	"epajsrm/internal/predict"
	"epajsrm/internal/report"
	"epajsrm/internal/runner"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/stats"
	"epajsrm/internal/workload"
)

// E6Emergency reproduces RIKEN's automated emergency job killing, with and
// without the pre-run power-estimate gate. Shape: the gate trades kills
// for queue waits — far fewer jobs lost at a small wait cost.
func E6Emergency(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 150
	horizon := 4 * simulator.Day
	limit := 64*90 + 22*270.0
	n := 400

	type cell struct {
		killed, completed int
		wait, peak        float64
		gateHolds         float64
	}
	cells := runner.Map(2, func(k int) cell {
		pol := &policy.Emergency{LimitW: limit, PreRunGate: k == 1}
		m := stdMgr(seed, 0, nil, pol)
		feed(m, spec, seed^11, n)
		peak := probePeak(m)
		m.Run(horizon)
		return cell{m.Metrics.Killed, m.Metrics.Completed, m.Metrics.Waits.Median(), peak(), float64(pol.GateHolds)}
	})
	noGate, gated := cells[0], cells[1]

	tbl := report.Table{
		Header: []string{"configuration", "kills", "completed", "median wait", "probed peak (kW)"},
		Rows: [][]string{
			{"emergency kill only", fmt.Sprint(noGate.killed), fmt.Sprint(noGate.completed),
				simulator.Time(noGate.wait).String(), fmtW(noGate.peak)},
			{"+ pre-run estimate gate", fmt.Sprint(gated.killed), fmt.Sprint(gated.completed),
				simulator.Time(gated.wait).String(), fmtW(gated.peak)},
		},
	}
	return Result{
		ID:    "E6",
		Title: "Emergency power response (RIKEN: automated kills + pre-run estimates)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("pre-run gate cut kills from %d to %d (limit %.0f kW)",
				noGate.killed, gated.killed, limit/1000),
		},
		Values: map[string]float64{
			"kills_nogate": float64(noGate.killed),
			"kills_gate":   float64(gated.killed),
			"gate_holds":   gated.gateHolds,
		},
	}
}

// E7EnergyTag reproduces LRZ's energy-aware scheduling: the administrator's
// goal switch. Shape (Auweter et al.): energy-to-solution goal saves
// system energy at a bounded runtime stretch.
func E7EnergyTag(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 400
	horizon := 5 * simulator.Day
	n := 300

	type cell struct {
		jobE, rt  float64
		completed int
	}
	tags := []*policy.EnergyTag{
		{Goal: policy.GoalPerformance},
		{Goal: policy.GoalEnergyToSolution, MaxSlowdown: 1.3},
	}
	cells := runner.Map(2, func(k int) cell {
		m := stdMgr(seed, 0, nil, tags[k], &policy.EnergyReport{})
		feed(m, spec, seed^13, n)
		m.Run(horizon)
		return cell{m.Metrics.JobEnergyJ.Mean() / 3.6e6, m.Metrics.RunTimes.Mean(), m.Metrics.Completed}
	})

	perfJobE, perfRT := cells[0].jobE, cells[0].rt
	enerJobE, enerRT := cells[1].jobE, cells[1].rt

	tbl := report.Table{
		Header: []string{"goal", "mean job energy (kWh)", "mean runtime", "completed"},
		Rows: [][]string{
			{"best performance", fmt.Sprintf("%.2f", perfJobE), simulator.Time(perfRT).String(), fmt.Sprint(cells[0].completed)},
			{"energy to solution", fmt.Sprintf("%.2f", enerJobE), simulator.Time(enerRT).String(), fmt.Sprint(cells[1].completed)},
		},
	}
	return Result{
		ID:    "E7",
		Title: "Energy-tag scheduling under an administrator goal (LRZ production)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("energy goal saved %s per job at %s mean runtime stretch",
				fmtPct(1-enerJobE/perfJobE), fmtPct(enerRT/perfRT-1)),
		},
		Values: map[string]float64{
			"perf_job_kwh":   perfJobE,
			"energy_job_kwh": enerJobE,
			"perf_rt":        perfRT,
			"energy_rt":      enerRT,
		},
	}
}

// E8Prediction scores the power predictors the way CINECA/RIKEN deploy
// them: online, fed back from completed jobs. Metric: MAPE on the second
// half of the stream.
func E8Prediction(seed uint64) Result {
	js := workload.NewGenerator(workload.DefaultSpec(), seed^17).Generate(2000)
	preds := []core.PowerPredictor{
		predict.NewNaive(250),
		predict.NewTagHistory(250, 8),
		predict.NewRegression(250),
	}
	names := []string{"naive-mean", "tag-history", "regression"}
	tbl := report.Table{Header: []string{"predictor", "MAPE (2nd half)"}}
	vals := map[string]float64{}
	for i, p := range preds {
		var pe, ae []float64
		for _, j := range js {
			pe = append(pe, p.Predict(j))
			ae = append(ae, j.PowerPerNodeW)
			p.Observe(j, j.PowerPerNodeW)
		}
		h := len(pe) / 2
		m := stats.MAPE(pe[h:], ae[h:])
		tbl.Rows = append(tbl.Rows, []string{names[i], fmtPct(m)})
		vals["mape_"+names[i]] = m
	}
	return Result{
		ID:     "E8",
		Title:  "Pre-run power prediction accuracy (RIKEN, CINECA/Bologna)",
		Table:  tbl,
		Notes:  []string{"tag-structured workloads make tag history and regression beat the naive mean"},
		Values: vals,
	}
}

// E9InterSystem reproduces Tokyo Tech's TSUBAME2/3 facility-budget sharing:
// two systems under one budget, demand shifting between them.
func E9InterSystem(seed uint64) Result {
	eng := simulator.NewEngine()
	mk := func(s uint64) *core.Manager {
		cfg := cluster.DefaultConfig()
		return traced(core.NewManager(core.Options{
			Cluster: cfg, Scheduler: sched.EASY{}, Seed: s, Engine: eng,
		}))
	}
	m1, m2 := mk(seed), mk(seed^1)
	budget := 2*64*90 + 24*270.0
	coord := policy.NewInterSystemBudget(budget, simulator.Minute, m1, m2)

	// Phase 1 (day 0..1): system 1 loaded. Phase 2 (day 1..2): system 2.
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 150
	for _, j := range workload.NewGenerator(spec, seed^19).Generate(250) {
		if j.Submit < simulator.Day {
			if err := m1.Submit(j, j.Submit); err != nil {
				panic(err)
			}
		}
	}
	for _, j := range workload.NewGenerator(spec, seed^23).Generate(250) {
		at := j.Submit + simulator.Day
		if at < 2*simulator.Day {
			if err := m2.Submit(j, at); err != nil {
				panic(err)
			}
		}
	}
	var share1Day0, share1Day1, combinedPeak float64
	eng.Every(simulator.Minute, "probe", func(now simulator.Time) {
		if p := coord.TotalPower(); p > combinedPeak {
			combinedPeak = p
		}
	})
	eng.After(12*simulator.Hour, "p1", func(simulator.Time) { share1Day0 = coord.Share(0) })
	eng.After(36*simulator.Hour, "p2", func(simulator.Time) { share1Day1 = coord.Share(0) })
	eng.RunUntil(3 * simulator.Day)

	tbl := report.Table{
		Header: []string{"probe", "system-1 share (kW)", "system-2 share (kW)"},
		Rows: [][]string{
			{"hour 12 (sys-1 loaded)", fmtW(share1Day0), fmtW(budget - share1Day0)},
			{"hour 36 (sys-2 loaded)", fmtW(share1Day1), fmtW(budget - share1Day1)},
		},
	}
	return Result{
		ID:    "E9",
		Title: "Inter-system facility budget sharing (Tokyo Tech TSUBAME2/3)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("combined probed peak %.0f kW vs joint budget %.0f kW", combinedPeak/1000, budget/1000),
			"the budget share follows the demand as load moves between systems",
		},
		Values: map[string]float64{
			"share1_day0":   share1Day0,
			"share1_day1":   share1Day1,
			"combined_peak": combinedPeak,
			"budget":        budget,
			"done1":         float64(m1.Metrics.Completed),
			"done2":         float64(m2.Metrics.Completed),
		},
	}
}

// E10Layout reproduces CEA's layout logic: a PDU maintenance window is
// announced; no job may be running on dependent nodes when it opens, and
// capacity degrades by exactly the dependent node count.
func E10Layout(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 250
	horizon := 2 * simulator.Day
	window := policy.MaintenanceWindow{PDU: 0, Chiller: -1, From: 6 * simulator.Hour, Until: 12 * simulator.Hour}
	lp := &policy.LayoutAware{Windows: []policy.MaintenanceWindow{window}}
	m := stdMgr(seed, 0, nil, lp)
	feed(m, spec, seed^29, 200)

	// Audit: at every minute inside the window, count jobs on PDU 0.
	violations := 0
	busyInWindow := 0
	m.Eng.Every(simulator.Minute, "audit", func(now simulator.Time) {
		if now < window.From || now >= window.Until {
			return
		}
		for _, n := range m.Cl.NodesOnPDU(0) {
			if n.State == cluster.StateBusy {
				violations++
			}
		}
		for _, n := range m.Cl.Nodes {
			if n.State == cluster.StateBusy {
				busyInWindow++
			}
		}
	})
	m.Run(horizon)

	tbl := report.Table{
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"maintenance window", fmt.Sprintf("%s .. %s on PDU 0 (32 nodes)", window.From, window.Until)},
			{"jobs running on PDU 0 during window (node-minutes)", fmt.Sprint(violations)},
			{"nodes excluded by the filter (decisions)", fmt.Sprint(lp.Avoided)},
			{"completed jobs", fmt.Sprint(m.Metrics.Completed)},
		},
	}
	return Result{
		ID:    "E10",
		Title: "Layout-aware scheduling around PDU/chiller maintenance (CEA)",
		Table: tbl,
		Notes: []string{"zero busy node-minutes on the serviced PDU during its window"},
		Values: map[string]float64{
			"violations": float64(violations),
			"avoided":    float64(lp.Avoided),
			"completed":  float64(m.Metrics.Completed),
		},
	}
}

var _ = jobs.StateCompleted
