package experiments

import (
	"fmt"

	"epajsrm/internal/policy"
	"epajsrm/internal/power"
	"epajsrm/internal/report"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

// E1StaticCap reproduces KAUST's production configuration: 70 % of nodes
// capped at a static node cap, 30 % uncapped. Expected shape: peak power
// drops roughly with the cap ratio while throughput loss stays modest
// (capped jobs slow only as far as the frequency the cap implies).
func E1StaticCap(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 250
	horizon := 4 * simulator.Day
	n := 300

	type row struct {
		name       string
		peakW      float64
		throughput float64
		medWait    float64
	}

	baseline := stdMgr(seed, 0.05, nil)
	basePeak := probePeak(baseline)
	feed(baseline, spec, seed^1, n)
	baseline.Run(horizon)

	capped := stdMgr(seed, 0.05, nil, &policy.StaticCap{CapW: 270, UncappedFrac: 0.30, RouteHungry: true})
	capPeak := probePeak(capped)
	feed(capped, spec, seed^1, n)
	capped.Run(horizon)

	rows := []row{
		{"uncapped baseline", basePeak(), baseline.Metrics.ThroughputNodeHoursPerDay(), baseline.Metrics.Waits.Median()},
		{"static cap 270 W on 70 %", capPeak(), capped.Metrics.ThroughputNodeHoursPerDay(), capped.Metrics.Waits.Median()},
	}
	tbl := report.Table{
		Header: []string{"configuration", "peak power (kW)", "throughput (node-h/day)", "median wait"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			r.name, fmtW(r.peakW), fmt.Sprintf("%.0f", r.throughput),
			simulator.Time(r.medWait).String(),
		})
	}
	peakDrop := 1 - rows[1].peakW/rows[0].peakW
	thrLoss := 1 - rows[1].throughput/rows[0].throughput
	return Result{
		ID:    "E1",
		Title: "Static power capping (KAUST: CAPMC, 70 % of nodes at 270 W)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("peak power reduced by %s; throughput change %s", fmtPct(peakDrop), fmtPct(-thrLoss)),
			"expected shape: peak drops toward the capped envelope, bounded throughput cost",
		},
		Values: map[string]float64{
			"base_peak_w": rows[0].peakW,
			"cap_peak_w":  rows[1].peakW,
			"base_thr":    rows[0].throughput,
			"cap_thr":     rows[1].throughput,
		},
	}
}

// E2IdleShutdown reproduces Tokyo Tech's idle shutdown plus boot-window
// capping. Shape (Mämmelä et al.): energy savings grow as utilization
// falls; the window-average cap holds with zero job kills.
func E2IdleShutdown(seed uint64) Result {
	horizon := 4 * simulator.Day
	tbl := report.Table{
		Header: []string{"arrival mean (s)", "utilization", "baseline energy (kWh)", "shutdown energy (kWh)", "saved"},
	}
	vals := map[string]float64{}
	var firstSave, lastSave float64
	arrivals := []float64{400, 1200, 3600}
	for i, arr := range arrivals {
		spec := workload.DefaultSpec()
		spec.ArrivalMeanSec = arr
		n := int(float64(horizon) / arr * 0.9)

		base := stdMgr(seed, 0, nil)
		feed(base, spec, seed^7, n)
		base.Run(horizon)
		baseE := base.Pw.TotalEnergy() / 3.6e6

		shut := stdMgr(seed, 0, nil,
			&policy.IdleShutdown{IdleAfter: 15 * simulator.Minute, MinSpare: 2},
			&policy.BootWindowCap{CapW: 64 * 250, Window: 30 * simulator.Minute},
		)
		feed(shut, spec, seed^7, n)
		shut.Run(horizon)
		shutE := shut.Pw.TotalEnergy() / 3.6e6

		util := base.Metrics.Utilization(base.Cl.Size())
		saved := 1 - shutE/baseE
		if i == 0 {
			firstSave = saved
		}
		lastSave = saved
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f", arr), fmtPct(util),
			fmt.Sprintf("%.0f", baseE), fmt.Sprintf("%.0f", shutE), fmtPct(saved),
		})
		vals[fmt.Sprintf("saved_%d", int(arr))] = saved
		vals[fmt.Sprintf("kills_%d", int(arr))] = float64(shut.Metrics.Killed)
	}
	return Result{
		ID:    "E2",
		Title: "Idle-node shutdown + boot-window capping (Tokyo Tech production)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("savings grow from %s (busy) to %s (sparse) as utilization falls", fmtPct(firstSave), fmtPct(lastSave)),
			"no jobs were killed: the capability's defining constraint",
		},
		Values: vals,
	}
}

// E3DVFS reproduces the DVFS energy-time trade-off the survey's related
// work is built on (Etinski, Freeh): lower frequency cuts power ~f^3 and
// stretches runtime by the compute-bound fraction; the energy-optimal
// frequency falls as memory-boundedness rises.
func E3DVFS() Result {
	model := power.DefaultNodeModel()
	table := power.DefaultPStates()
	tbl := report.Table{
		Header: []string{"freq (GHz)", "runtime x (mem 0%)", "energy x (mem 0%)", "runtime x (mem 50%)", "energy x (mem 50%)", "runtime x (mem 80%)", "energy x (mem 80%)"},
	}
	vals := map[string]float64{}
	for _, ps := range table {
		f := table.Frac(ps.Index)
		row := []string{fmt.Sprintf("%.1f", ps.FreqGHz)}
		for _, mem := range []float64{0, 0.5, 0.8} {
			rt := power.Slowdown(f, mem)
			e := model.EnergyToSolution(model.MaxW, f, mem)
			row = append(row, fmt.Sprintf("%.2f", rt), fmt.Sprintf("%.2f", e))
			if ps.Index == len(table)-1 {
				vals[fmt.Sprintf("min_e_mem%.0f", mem*100)] = e
			}
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	// Find energy-optimal frequency per memory class.
	for _, mem := range []float64{0, 0.5, 0.8} {
		best, bestE := 1.0, 1.0
		for _, ps := range table {
			f := table.Frac(ps.Index)
			if e := model.EnergyToSolution(model.MaxW, f, mem); e < bestE {
				best, bestE = f, e
			}
		}
		vals[fmt.Sprintf("beststar_mem%.0f", mem*100)] = best
	}
	return Result{
		ID:    "E3",
		Title: "DVFS energy-time trade-off (Etinski et al., Freeh et al.)",
		Table: tbl,
		Notes: []string{
			"memory-bound codes reach lower energy at lower frequency; compute-bound codes pay ~1/f in runtime",
		},
		Values: vals,
	}
}

// E4PowerSharing compares a uniform static division of a cluster power
// budget with Ellsworth-style dynamic sharing at the same budget.
func E4PowerSharing(seed uint64) Result {
	// Saturating pressure: the budget must bind, so arrivals outpace the
	// capped service rate and the horizon cuts a backlog.
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 90
	horizon := 3 * simulator.Day
	n := 1500
	tbl := report.Table{
		Header: []string{"budget (kW)", "uniform static (node-h/day)", "dynamic sharing (node-h/day)", "gain"},
	}
	vals := map[string]float64{}
	for _, budget := range []float64{64 * 150, 64 * 200, 64 * 280} {
		uniform := stdMgr(seed, 0.05, nil)
		for _, node := range uniform.Cl.Nodes {
			if err := uniform.Ctrl.SetNodeCap(node.ID, budget/64); err != nil {
				panic(err)
			}
		}
		feed(uniform, spec, seed^3, n)
		uniform.Run(horizon)

		dynamic := stdMgr(seed, 0.05, nil, &policy.DynamicPowerSharing{BudgetW: budget})
		feed(dynamic, spec, seed^3, n)
		dynamic.Run(horizon)

		u := uniform.Metrics.ThroughputNodeHoursPerDay()
		d := dynamic.Metrics.ThroughputNodeHoursPerDay()
		gain := d/u - 1
		tbl.Rows = append(tbl.Rows, []string{
			fmtW(budget), fmt.Sprintf("%.0f", u), fmt.Sprintf("%.0f", d), fmtPct(gain),
		})
		vals[fmt.Sprintf("gain_%d", int(budget))] = gain
	}
	return Result{
		ID:     "E4",
		Title:  "Dynamic power sharing vs uniform static caps (Ellsworth; KAUST SDPM)",
		Table:  tbl,
		Notes:  []string{"dynamic sharing wins most where the budget binds hardest"},
		Values: vals,
	}
}

// E5Overprovision reproduces Sarood et al.'s over-provisioning result: at
// a fixed budget, a larger capped machine out-produces a smaller
// fully-powered one.
func E5Overprovision(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 180
	horizon := 3 * simulator.Day
	n := 500
	budget := 32*330.0 + 32*15

	small := stdMgrSized(seed, 32, nil)
	feed(small, spec, seed^5, n)
	small.Run(horizon)

	over := stdMgr(seed, 0.05, nil, &policy.Overprovision{BudgetW: budget, PreferWide: true})
	feed(over, spec, seed^5, n)
	over.Run(horizon)

	s := small.Metrics.ThroughputNodeHoursPerDay()
	o := over.Metrics.ThroughputNodeHoursPerDay()
	tbl := report.Table{
		Header: []string{"configuration", "nodes", "throughput (node-h/day)", "completed"},
		Rows: [][]string{
			{"fully powered", "32", fmt.Sprintf("%.0f", s), fmt.Sprint(small.Metrics.Completed)},
			{"over-provisioned + caps", "64", fmt.Sprintf("%.0f", o), fmt.Sprint(over.Metrics.Completed)},
		},
	}
	return Result{
		ID:     "E5",
		Title:  "Over-provisioning under a strict power budget (Sarood et al.)",
		Table:  tbl,
		Notes:  []string{fmt.Sprintf("over-provisioned gain: %s at equal budget", fmtPct(o/s-1))},
		Values: map[string]float64{"small_thr": s, "over_thr": o},
	}
}
