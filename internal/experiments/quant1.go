package experiments

import (
	"fmt"

	"epajsrm/internal/core"
	"epajsrm/internal/policy"
	"epajsrm/internal/power"
	"epajsrm/internal/report"
	"epajsrm/internal/runner"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

// E1StaticCap reproduces KAUST's production configuration: 70 % of nodes
// capped at a static node cap, 30 % uncapped. Expected shape: peak power
// drops roughly with the cap ratio while throughput loss stays modest
// (capped jobs slow only as far as the frequency the cap implies).
func E1StaticCap(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 250
	horizon := 4 * simulator.Day
	n := 300

	type row struct {
		name       string
		peakW      float64
		throughput float64
		medWait    float64
	}

	configs := []struct {
		name string
		pols []core.Policy
	}{
		{"uncapped baseline", nil},
		{"static cap 270 W on 70 %", []core.Policy{&policy.StaticCap{CapW: 270, UncappedFrac: 0.30, RouteHungry: true}}},
	}
	rows := runner.Map(len(configs), func(i int) row {
		m := stdMgr(seed, 0.05, nil, configs[i].pols...)
		peak := probePeak(m)
		feed(m, spec, seed^1, n)
		m.Run(horizon)
		return row{configs[i].name, peak(), m.Metrics.ThroughputNodeHoursPerDay(), m.Metrics.Waits.Median()}
	})
	tbl := report.Table{
		Header: []string{"configuration", "peak power (kW)", "throughput (node-h/day)", "median wait"},
	}
	for _, r := range rows {
		tbl.Rows = append(tbl.Rows, []string{
			r.name, fmtW(r.peakW), fmt.Sprintf("%.0f", r.throughput),
			simulator.Time(r.medWait).String(),
		})
	}
	peakDrop := 1 - rows[1].peakW/rows[0].peakW
	thrLoss := 1 - rows[1].throughput/rows[0].throughput
	return Result{
		ID:    "E1",
		Title: "Static power capping (KAUST: CAPMC, 70 % of nodes at 270 W)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("peak power reduced by %s; throughput change %s", fmtPct(peakDrop), fmtPct(-thrLoss)),
			"expected shape: peak drops toward the capped envelope, bounded throughput cost",
		},
		Values: map[string]float64{
			"base_peak_w": rows[0].peakW,
			"cap_peak_w":  rows[1].peakW,
			"base_thr":    rows[0].throughput,
			"cap_thr":     rows[1].throughput,
		},
	}
}

// E2IdleShutdown reproduces Tokyo Tech's idle shutdown plus boot-window
// capping. Shape (Mämmelä et al.): energy savings grow as utilization
// falls; the window-average cap holds with zero job kills.
func E2IdleShutdown(seed uint64) Result {
	horizon := 4 * simulator.Day
	tbl := report.Table{
		Header: []string{"arrival mean (s)", "utilization", "baseline energy (kWh)", "shutdown energy (kWh)", "saved"},
	}
	vals := map[string]float64{}
	var firstSave, lastSave float64
	arrivals := []float64{400, 1200, 3600}
	type cell struct {
		energyKWh float64
		util      float64
		killed    float64
	}
	// Run index 2i is the baseline at arrivals[i]; 2i+1 adds the shutdown
	// and boot-window policies.
	cells := runner.Map(2*len(arrivals), func(k int) cell {
		arr := arrivals[k/2]
		spec := workload.DefaultSpec()
		spec.ArrivalMeanSec = arr
		n := int(float64(horizon) / arr * 0.9)
		var pols []core.Policy
		if k%2 == 1 {
			pols = []core.Policy{
				&policy.IdleShutdown{IdleAfter: 15 * simulator.Minute, MinSpare: 2},
				&policy.BootWindowCap{CapW: 64 * 250, Window: 30 * simulator.Minute},
			}
		}
		m := stdMgr(seed, 0, nil, pols...)
		feed(m, spec, seed^7, n)
		m.Run(horizon)
		return cell{m.Pw.TotalEnergy() / 3.6e6, m.Metrics.Utilization(m.Cl.Size()), float64(m.Metrics.Killed)}
	})
	for i, arr := range arrivals {
		base, shut := cells[2*i], cells[2*i+1]
		saved := 1 - shut.energyKWh/base.energyKWh
		if i == 0 {
			firstSave = saved
		}
		lastSave = saved
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f", arr), fmtPct(base.util),
			fmt.Sprintf("%.0f", base.energyKWh), fmt.Sprintf("%.0f", shut.energyKWh), fmtPct(saved),
		})
		vals[fmt.Sprintf("saved_%d", int(arr))] = saved
		vals[fmt.Sprintf("kills_%d", int(arr))] = shut.killed
	}
	return Result{
		ID:    "E2",
		Title: "Idle-node shutdown + boot-window capping (Tokyo Tech production)",
		Table: tbl,
		Notes: []string{
			fmt.Sprintf("savings grow from %s (busy) to %s (sparse) as utilization falls", fmtPct(firstSave), fmtPct(lastSave)),
			"no jobs were killed: the capability's defining constraint",
		},
		Values: vals,
	}
}

// E3DVFS reproduces the DVFS energy-time trade-off the survey's related
// work is built on (Etinski, Freeh): lower frequency cuts power ~f^3 and
// stretches runtime by the compute-bound fraction; the energy-optimal
// frequency falls as memory-boundedness rises.
func E3DVFS() Result {
	model := power.DefaultNodeModel()
	table := power.DefaultPStates()
	tbl := report.Table{
		Header: []string{"freq (GHz)", "runtime x (mem 0%)", "energy x (mem 0%)", "runtime x (mem 50%)", "energy x (mem 50%)", "runtime x (mem 80%)", "energy x (mem 80%)"},
	}
	vals := map[string]float64{}
	for _, ps := range table {
		f := table.Frac(ps.Index)
		row := []string{fmt.Sprintf("%.1f", ps.FreqGHz)}
		for _, mem := range []float64{0, 0.5, 0.8} {
			rt := power.Slowdown(f, mem)
			e := model.EnergyToSolution(model.MaxW, f, mem)
			row = append(row, fmt.Sprintf("%.2f", rt), fmt.Sprintf("%.2f", e))
			if ps.Index == len(table)-1 {
				vals[fmt.Sprintf("min_e_mem%.0f", mem*100)] = e
			}
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	// Find energy-optimal frequency per memory class.
	for _, mem := range []float64{0, 0.5, 0.8} {
		best, bestE := 1.0, 1.0
		for _, ps := range table {
			f := table.Frac(ps.Index)
			if e := model.EnergyToSolution(model.MaxW, f, mem); e < bestE {
				best, bestE = f, e
			}
		}
		vals[fmt.Sprintf("beststar_mem%.0f", mem*100)] = best
	}
	return Result{
		ID:    "E3",
		Title: "DVFS energy-time trade-off (Etinski et al., Freeh et al.)",
		Table: tbl,
		Notes: []string{
			"memory-bound codes reach lower energy at lower frequency; compute-bound codes pay ~1/f in runtime",
		},
		Values: vals,
	}
}

// E4PowerSharing compares a uniform static division of a cluster power
// budget with Ellsworth-style dynamic sharing at the same budget.
func E4PowerSharing(seed uint64) Result {
	// Saturating pressure: the budget must bind, so arrivals outpace the
	// capped service rate and the horizon cuts a backlog.
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 90
	horizon := 3 * simulator.Day
	n := 1500
	tbl := report.Table{
		Header: []string{"budget (kW)", "uniform static (node-h/day)", "dynamic sharing (node-h/day)", "gain"},
	}
	vals := map[string]float64{}
	budgets := []float64{64 * 150, 64 * 200, 64 * 280}
	// Run index 2i is the uniform static division at budgets[i]; 2i+1 is
	// dynamic sharing at the same budget.
	thr := runner.Map(2*len(budgets), func(k int) float64 {
		budget := budgets[k/2]
		var m *core.Manager
		if k%2 == 0 {
			m = stdMgr(seed, 0.05, nil)
			for _, node := range m.Cl.Nodes {
				if err := m.Ctrl.SetNodeCap(node.ID, budget/64); err != nil {
					panic(err)
				}
			}
		} else {
			m = stdMgr(seed, 0.05, nil, &policy.DynamicPowerSharing{BudgetW: budget})
		}
		feed(m, spec, seed^3, n)
		m.Run(horizon)
		return m.Metrics.ThroughputNodeHoursPerDay()
	})
	for i, budget := range budgets {
		u, d := thr[2*i], thr[2*i+1]
		gain := d/u - 1
		tbl.Rows = append(tbl.Rows, []string{
			fmtW(budget), fmt.Sprintf("%.0f", u), fmt.Sprintf("%.0f", d), fmtPct(gain),
		})
		vals[fmt.Sprintf("gain_%d", int(budget))] = gain
	}
	return Result{
		ID:     "E4",
		Title:  "Dynamic power sharing vs uniform static caps (Ellsworth; KAUST SDPM)",
		Table:  tbl,
		Notes:  []string{"dynamic sharing wins most where the budget binds hardest"},
		Values: vals,
	}
}

// E5Overprovision reproduces Sarood et al.'s over-provisioning result: at
// a fixed budget, a larger capped machine out-produces a smaller
// fully-powered one.
func E5Overprovision(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 180
	horizon := 3 * simulator.Day
	n := 500
	budget := 32*330.0 + 32*15

	type cell struct {
		thr       float64
		completed int
	}
	cells := runner.Map(2, func(k int) cell {
		var m *core.Manager
		if k == 0 {
			m = stdMgrSized(seed, 32, nil)
		} else {
			m = stdMgr(seed, 0.05, nil, &policy.Overprovision{BudgetW: budget, PreferWide: true})
		}
		feed(m, spec, seed^5, n)
		m.Run(horizon)
		return cell{m.Metrics.ThroughputNodeHoursPerDay(), m.Metrics.Completed}
	})

	s := cells[0].thr
	o := cells[1].thr
	tbl := report.Table{
		Header: []string{"configuration", "nodes", "throughput (node-h/day)", "completed"},
		Rows: [][]string{
			{"fully powered", "32", fmt.Sprintf("%.0f", s), fmt.Sprint(cells[0].completed)},
			{"over-provisioned + caps", "64", fmt.Sprintf("%.0f", o), fmt.Sprint(cells[1].completed)},
		},
	}
	return Result{
		ID:     "E5",
		Title:  "Over-provisioning under a strict power budget (Sarood et al.)",
		Table:  tbl,
		Notes:  []string{fmt.Sprintf("over-provisioned gain: %s at equal budget", fmtPct(o/s-1))},
		Values: map[string]float64{"small_thr": s, "over_thr": o},
	}
}
