package experiments

import (
	"testing"

	"epajsrm/internal/simulator"
)

// TestE24BurnFiresEarlierThanThreshold is the watchdog's acceptance
// criterion on the fault-storm scenario: the multi-window burn-rate rule
// must fire demonstrably earlier than the plain cumulative-threshold rule
// on the same cap-violation budget.
func TestE24BurnFiresEarlierThanThreshold(t *testing.T) {
	r := E24SLOWatchdog(3)
	if r.Values["total_wattmin"] <= 0 {
		t.Fatal("curtailment scenario produced no cap-violation consumption")
	}
	burn, thr := r.Values["first_fire_burn_s"], r.Values["first_fire_threshold_s"]
	if burn < 0 {
		t.Fatal("burn-rate rule never fired")
	}
	if thr < 0 {
		t.Fatal("threshold rule never fired")
	}
	if burn >= thr {
		t.Fatalf("burn-rate fired at %.0fs, not earlier than threshold at %.0fs", burn, thr)
	}
	if lead := thr - burn; lead < float64(simulator.Hour) {
		t.Fatalf("lead %.0fs is under an hour — not a demonstrable early warning", lead)
	}
	if r.Values["burn_factor"] <= 1 {
		t.Fatalf("calibrated burn factor %.2f is trivial (≤ 1 fires on the steady rate)", r.Values["burn_factor"])
	}
}

// TestE24Deterministic: same seed, same report; a different seed moves the
// fault-modulated numbers.
func TestE24Deterministic(t *testing.T) {
	a := E24SLOWatchdog(9)
	b := E24SLOWatchdog(9)
	if a.Render() != b.Render() {
		t.Fatalf("same-seed renders differ:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	c := E24SLOWatchdog(10)
	if a.Render() == c.Render() {
		t.Fatal("different seeds produced identical reports")
	}
}
