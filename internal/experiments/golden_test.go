package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"epajsrm/internal/runner"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files from the current tree")

// goldenCases pins two representative experiments (the resilience and
// checkpoint sweeps, which exercise faults, requeues, checkpoint I/O and
// the power meters together) to committed renders. The parallel-vs-
// sequential test asserts procs-invariance of whatever the current tree
// produces; this test additionally asserts the render is byte-identical to
// the output captured before the compact-layout/calendar-queue rework, so
// a data-structure change that shifts event order or float accumulation
// order fails loudly rather than silently re-baselining.
var goldenCases = []struct {
	file string
	mk   func(uint64) Result
}{
	{"e21_seed2.golden", E21Resilience},
	{"e22_seed2.golden", E22CheckpointSweep},
	{"e24_seed2.golden", E24SLOWatchdog},
}

func TestGoldenReportsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps in short mode")
	}
	for _, procs := range []int{1, 4} {
		prev := runner.SetProcs(procs)
		for _, tc := range goldenCases {
			got := tc.mk(2).Render()
			path := filepath.Join("testdata", tc.file)
			if *updateGolden && procs == 1 {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (regenerate with -update): %v", path, err)
			}
			if got != string(want) {
				t.Errorf("%s render at procs=%d differs from committed golden %s:\n--- got ---\n%s\n--- want ---\n%s",
					tc.file, procs, path, got, string(want))
			}
		}
		runner.SetProcs(prev)
	}
}
