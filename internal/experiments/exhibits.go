package experiments

import (
	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/policy"
	"epajsrm/internal/power"
	"epajsrm/internal/report"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/survey"
)

// T1TableI regenerates the paper's Table I from the survey data model.
func T1TableI() Result {
	tbl := survey.ActivityTable(1)
	return Result{
		ID:    "T1",
		Title: "Table I — summary of the answers from each center (part 1)",
		Table: tbl,
		Notes: []string{
			"generated from the structured survey model in internal/survey, not transcribed",
		},
		Values: map[string]float64{"rows": float64(len(tbl.Rows))},
	}
}

// T2TableII regenerates the paper's Table II.
func T2TableII() Result {
	tbl := survey.ActivityTable(2)
	return Result{
		ID:     "T2",
		Title:  "Table II — summary of the answers from each center (part 2)",
		Table:  tbl,
		Values: map[string]float64{"rows": float64(len(tbl.Rows))},
	}
}

// F1ComponentDiagram regenerates Figure 1 from a live EPA JSRM stack: a
// manager assembled with one policy of each functional category, queried
// for its actual component registry.
func F1ComponentDiagram() Result {
	m := traced(core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: sched.EASY{},
		Seed:      1,
		Facility:  power.DefaultFacility(),
	}))
	m.Use(&policy.StaticCap{CapW: 270, UncappedFrac: 0.3})
	m.Use(&policy.IdleShutdown{IdleAfter: 15 * simulator.Minute})
	m.Use(&policy.EnergyReport{})
	diagram := report.ComponentDiagram(report.Components{
		SystemName:  m.Cl.Cfg.Name,
		Scheduler:   m.Sched.Name(),
		Policies:    m.PolicyNames(),
		Nodes:       m.Cl.Size(),
		HasFacility: m.Fac != nil,
		HasESP:      false,
		Telemetry:   m.Tel.Period.String(),
	})
	return Result{
		ID:    "F1",
		Title: "Figure 1 — interactions among the components of an EPA JSRM solution",
		Table: report.Table{Title: diagram},
		Notes: []string{"diagram generated from the live component registry of a constructed core.Manager"},
		Values: map[string]float64{
			"policies": float64(len(m.PolicyNames())),
		},
	}
}

// F2WorldMap regenerates Figure 2: the geographic location of the nine
// participating centers.
func F2WorldMap() Result {
	pts := survey.MapPoints()
	mapStr := report.WorldMap(pts, 76, 22)
	return Result{
		ID:     "F2",
		Title:  "Figure 2 — map of the geographic location of the participating centers",
		Table:  report.Table{Title: mapStr},
		Notes:  []string{"equirectangular schematic; markers 1-9 are the surveyed sites"},
		Values: map[string]float64{"sites": float64(len(pts))},
	}
}
