package experiments

import (
	"fmt"

	"epajsrm/internal/alert"
	"epajsrm/internal/core"
	"epajsrm/internal/fault"
	"epajsrm/internal/policy"
	"epajsrm/internal/report"
	"epajsrm/internal/simulator"
	"epajsrm/internal/tsdb"
	"epajsrm/internal/workload"
)

// e24Horizon matches the E21 fault-storm scenario length.
const e24Horizon = 4 * simulator.Day

// e24Run executes the E21 high-fault scenario under a grid-curtailment
// regime: the administrative system cap (the SLO; the emergency kill
// limit stays the hard backstop far above it) normally sits at 85% of the
// site limit, but every 8 hours the grid curtails the site to 55% for one
// hour. The curtailed per-node share lands below the minimum-frequency
// draw of a busy node — hardware clamps at MinFrac — so each curtailment
// window carries a sustained, fault-modulated cap excursion: exactly the
// bursty consumption profile burn-rate alerting exists for. Every run
// attaches a metric history; rs, when non-nil, additionally arms a
// watchdog over it.
func e24Run(seed uint64, rs *alert.Rules) (*core.Manager, *alert.Watchdog) {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 250
	limit := 64*90 + 22*270.0

	m := stdMgr(seed, 0, nil,
		&policy.Emergency{LimitW: limit, PreRunGate: true},
		&policy.TelemetryGuard{FallbackCapW: 250})
	setCap := func(frac float64) {
		if err := m.Ctrl.SetSystemCap(frac * limit); err != nil {
			panic(err)
		}
	}
	setCap(0.85)
	m.Eng.Every(8*simulator.Hour, "grid-curtail", func(simulator.Time) {
		setCap(0.55)
		m.Eng.AfterDaemon(simulator.Hour, "grid-restore", func(simulator.Time) {
			setCap(0.85)
		})
	})
	feed(m, spec, seed^17, 300)
	// Keep the full 4-day horizon in the raw tier so the probe can replay
	// every evaluation window at the sampling cadence.
	m.AttachHistory(tsdb.New(m.Reg, tsdb.Config{RawCap: int(e24Horizon/simulator.Minute) + 16}))
	var w *alert.Watchdog
	if rs != nil {
		var err error
		w, err = alert.New(m.Hist, m.Reg, *rs, e24Horizon)
		if err != nil {
			panic(err)
		}
		m.AttachWatchdog(w)
	}
	in := fault.New(m, fault.Profile{
		NodeMTBF: 2 * simulator.Day, NodeMTTR: simulator.Hour,
		SensorMTBF: 6 * simulator.Hour, SensorMTTR: 20 * simulator.Minute,
		SensorStuckProb: 0.5, ActuationFailProb: 0.3,
	}, seed^0x1fab)
	in.Start()
	m.Run(e24Horizon)
	return m, w
}

// e24Consumed mirrors the watchdog's integral_min consumption: the
// series' integral over (from, to] in unit·minutes.
func e24Consumed(h *tsdb.Store, from, to simulator.Time) float64 {
	v, _, _ := h.Reduce("power.cap_violation_w", from, to, tsdb.OpIntegral)
	return v / 60
}

// E24SLOWatchdog demonstrates the watchdog's headline property on the
// fault-storm scenario: a multi-window burn-rate rule over cap-violation
// watt·minutes fires earlier than a plain cumulative-threshold rule on
// the same budget. A probe run (history only, no watchdog) measures the
// scenario's total consumption and its burstiest evaluation windows; the
// armed run then carries two rules calibrated from the probe — a
// threshold at 90% of the total, and a burn-rate rule at half the peak
// observed burn factor — and the report compares their first-fire times.
func E24SLOWatchdog(seed uint64) Result {
	const (
		fastWin = 30 * simulator.Minute
		slowWin = 2 * simulator.Hour
		step    = simulator.Minute
	)

	probe, _ := e24Run(seed, nil)
	h := probe.Hist
	total := e24Consumed(h, 0, e24Horizon)

	tbl := report.Table{
		Header: []string{"rule", "kind", "first fire", "fires", "total firing", "lead vs threshold"},
	}
	values := map[string]float64{"total_wattmin": total}
	if total <= 0 {
		return Result{
			ID:     "E24",
			Title:  "SLO watchdog: burn-rate vs threshold alerting on cap-violation budget",
			Table:  tbl,
			Notes:  []string{"scenario produced no cap violations; nothing to alert on"},
			Values: values,
		}
	}

	// Replay the armed run's evaluation grid over the probe history: the
	// peak min(fast, slow) burn factor calibrates the burn threshold so
	// the rule is neither trivial (burn ≤ 1 fires on the steady rate) nor
	// unreachable (burn above the scenario's burstiest window).
	budget := 0.9 * total
	peak := 0.0
	for t := step; t <= e24Horizon; t += step {
		fastFrom, slowFrom := t-fastWin, t-slowWin
		if fastFrom < 0 {
			fastFrom = 0
		}
		if slowFrom < 0 {
			slowFrom = 0
		}
		fast := e24Consumed(h, fastFrom, t) / (budget * float64(t-fastFrom) / float64(e24Horizon))
		slow := e24Consumed(h, slowFrom, t) / (budget * float64(t-slowFrom) / float64(e24Horizon))
		if r := min(fast, slow); r > peak {
			peak = r
		}
	}
	burn := 0.5 * peak
	if burn < 1.1 {
		burn = 1.1
	}

	rs := alert.Rules{Rules: []alert.Rule{
		{
			Name: "cap-violation-threshold", Kind: "threshold",
			Metric: "power.cap_violation_w", Severity: "ticket",
			Agg: "integral_min", WindowS: int64(e24Horizon), Op: ">", Value: budget,
		},
		{
			Name: "cap-violation-burn", Kind: "burn_rate",
			Metric: "power.cap_violation_w", Severity: "page",
			Consume: "integral_min", Budget: budget, Burn: burn,
			FastWindowS: int64(fastWin), SlowWindowS: int64(slowWin),
		},
	}}
	_, w := e24Run(seed, &rs)

	firstFire := func(name string) (simulator.Time, bool) { return w.FirstFire(name) }
	tThr, okThr := firstFire("cap-violation-threshold")
	tBurn, okBurn := firstFire("cap-violation-burn")
	fmtFire := func(t simulator.Time, ok bool) string {
		if !ok {
			return "never"
		}
		return t.String()
	}
	lead := "-"
	if okThr && okBurn {
		lead = (tThr - tBurn).String()
	}
	sum := w.Summary()
	row := func(name, kind, fire, leadCol string) []string {
		for _, r := range sum.Rows {
			if r[0] == name {
				return []string{name, kind, fire, r[3], r[5], leadCol}
			}
		}
		return []string{name, kind, fire, "-", "-", leadCol}
	}
	tbl.Rows = append(tbl.Rows,
		row("cap-violation-burn", "burn_rate", fmtFire(tBurn, okBurn), lead),
		row("cap-violation-threshold", "threshold", fmtFire(tThr, okThr), "-"),
	)

	values["budget_wattmin"] = budget
	values["burn_factor"] = burn
	values["peak_burn"] = peak
	values["first_fire_burn_s"] = fireSeconds(tBurn, okBurn)
	values["first_fire_threshold_s"] = fireSeconds(tThr, okThr)
	if okThr && okBurn {
		values["lead_s"] = float64(tThr - tBurn)
	}

	notes := []string{
		fmt.Sprintf("budget = 90%% of the scenario's %.0f cap-violation watt·min; burn threshold %.2f = half the peak observed burn factor %.2f", total, burn, peak),
	}
	if okThr && okBurn && tBurn < tThr {
		notes = append(notes, fmt.Sprintf("the multi-window burn-rate rule fires %s earlier than the plain cumulative threshold on the same budget", (tThr-tBurn).String()))
	}
	return Result{
		ID:     "E24",
		Title:  "SLO watchdog: burn-rate vs threshold alerting on cap-violation budget",
		Table:  tbl,
		Notes:  notes,
		Values: values,
	}
}

// fireSeconds flattens a first-fire time for the Values map (-1: never).
func fireSeconds(t simulator.Time, ok bool) float64 {
	if !ok {
		return -1
	}
	return float64(t)
}
