package experiments

import "testing"

func TestE22OffZeroReproducesBaseline(t *testing.T) {
	r := E22CheckpointSweep(3)
	// Checkpoint disabled + idle injector must match the plain no-injector
	// baseline exactly: the whole subsystem costs nothing until enabled.
	if r.Values["goodput_off_zero"] != r.Values["goodput_base"] {
		t.Fatalf("off/zero goodput %f != baseline %f",
			r.Values["goodput_off_zero"], r.Values["goodput_base"])
	}
	if r.Values["completed_off_zero"] != r.Values["completed_base"] {
		t.Fatalf("off/zero completed %f != baseline %f",
			r.Values["completed_off_zero"], r.Values["completed_base"])
	}
	if r.Values["ckpts_off_zero"] != 0 || r.Values["restores_off_zero"] != 0 {
		t.Fatal("disabled substrate produced checkpoint activity")
	}
	if r.Values["lostwork_off_zero"] != 0 {
		t.Fatalf("fault-free run lost %f node-s of work", r.Values["lostwork_off_zero"])
	}
}

func TestE22CheckpointingRecoversGoodput(t *testing.T) {
	r := E22CheckpointSweep(3)
	if r.Values["crashes_off_high"] <= 0 {
		t.Fatal("high fault level produced no crashes")
	}
	// The headline claim: at the high fault rate, every checkpointing
	// configuration strictly beats requeue-from-scratch on goodput.
	off := r.Values["goodput_off_high"]
	for _, k := range []string{"30m", "2h", "yd"} {
		got := r.Values["goodput_"+k+"_high"]
		if got <= off {
			t.Fatalf("goodput with %s checkpointing = %f, not above requeue-from-scratch %f", k, got, off)
		}
	}
	// And checkpointing bounds the damage: less work discarded than with
	// requeue-from-scratch.
	for _, k := range []string{"30m", "2h", "yd"} {
		if r.Values["lostwork_"+k+"_high"] >= r.Values["lostwork_off_high"] {
			t.Fatalf("lost work with %s checkpointing = %f, not below off %f",
				k, r.Values["lostwork_"+k+"_high"], r.Values["lostwork_off_high"])
		}
	}
	// Under faults the substrate actually worked: images written, jobs
	// restored from them.
	if r.Values["ckpts_30m_high"] <= 0 || r.Values["restores_30m_high"] <= 0 {
		t.Fatal("no checkpoint/restore activity at the high fault rate")
	}
	// Fault-free checkpointing is pure overhead: goodput must not exceed
	// the uncheckpointed fault-free run.
	if r.Values["goodput_30m_zero"] > r.Values["goodput_off_zero"] {
		t.Fatalf("checkpoint overhead improved fault-free goodput: %f > %f",
			r.Values["goodput_30m_zero"], r.Values["goodput_off_zero"])
	}
}

func TestE22Deterministic(t *testing.T) {
	a := E22CheckpointSweep(9)
	b := E22CheckpointSweep(9)
	if a.Render() != b.Render() {
		t.Fatalf("same seed rendered differently:\n%s\n---\n%s", a.Render(), b.Render())
	}
	for k, v := range a.Values {
		if b.Values[k] != v {
			t.Fatalf("value %q differs: %f vs %f", k, v, b.Values[k])
		}
	}
	c := E22CheckpointSweep(10)
	if a.Render() == c.Render() {
		t.Fatal("different seeds produced identical exhibits")
	}
}
