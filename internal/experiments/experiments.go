// Package experiments implements the reproduction harness: one function
// per exhibit of the paper (Tables I/II, Figures 1/2) and one per
// validation experiment (E1–E22, E24) from DESIGN.md's experiment index. Each
// returns a Result whose table holds the rows a paper would print;
// bench_test.go at the repository root wraps each in a testing.B target,
// and cmd/epabench prints them all.
package experiments

import (
	"fmt"
	"sync/atomic"

	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/power"
	"epajsrm/internal/report"
	"epajsrm/internal/runner"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
	"epajsrm/internal/workload"
)

// tracer, when set, is attached to every manager the experiments build, so
// a whole experiment's control loop can be exported as one trace file
// (epabench -trace). Atomic because experiments run across the runner
// pool; the tracer itself is mutex-guarded, but a deterministic event
// stream additionally needs procs=1 (epabench forces that).
var tracer atomic.Pointer[trace.Tracer]

// SetTracer routes the control-loop events of every subsequently built
// experiment manager into tr; nil disables. Call before running makers.
func SetTracer(tr *trace.Tracer) { tracer.Store(tr) }

// traced attaches the package tracer, if any, to a freshly built manager.
func traced(m *core.Manager) *core.Manager {
	if tr := tracer.Load(); tr != nil {
		m.AttachTracer(tr)
	}
	return m
}

// Result is one experiment's output.
type Result struct {
	ID    string
	Title string
	Table report.Table
	// Notes carries the shape conclusions checked against the paper/cited
	// literature.
	Notes []string
	// Key numbers for programmatic assertions in benches/tests.
	Values map[string]float64
}

// Render prints the result as text.
func (r Result) Render() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table.Render())
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// fmtW formats watts as kW with sensible precision.
func fmtW(w float64) string { return fmt.Sprintf("%.1f", w/1000) }

// fmtPct formats a ratio as a percentage.
func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// stdMgr builds the standard 64-node experiment system.
func stdMgr(seed uint64, varSigma float64, s sched.Scheduler, pols ...core.Policy) *core.Manager {
	if s == nil {
		s = sched.EASY{}
	}
	m := traced(core.NewManager(core.Options{
		Cluster:   cluster.DefaultConfig(),
		Scheduler: s,
		Seed:      seed,
		VarSigma:  varSigma,
		Facility:  power.DefaultFacility(),
	}))
	for _, p := range pols {
		m.Use(p)
	}
	return m
}

// stdMgrSized builds an experiment system with a custom node count,
// keeping rack shape proportional.
func stdMgrSized(seed uint64, nodes int, s sched.Scheduler, pols ...core.Policy) *core.Manager {
	if s == nil {
		s = sched.EASY{}
	}
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	m := traced(core.NewManager(core.Options{
		Cluster:   cfg,
		Scheduler: s,
		Seed:      seed,
		VarSigma:  0.05,
		Facility:  power.DefaultFacility(),
	}))
	for _, p := range pols {
		m.Use(p)
	}
	return m
}

// feed submits n jobs of the given spec.
func feed(m *core.Manager, spec workload.Spec, seed uint64, n int) {
	for _, j := range workload.NewGenerator(spec, seed).Generate(n) {
		if err := m.Submit(j, j.Submit); err != nil {
			panic(err)
		}
	}
}

// probePeak installs a 30-second peak-power probe and returns a getter.
func probePeak(m *core.Manager) func() float64 {
	maxP := 0.0
	m.Eng.Every(30*simulator.Second, "peak-probe", func(simulator.Time) {
		if p := m.Pw.TotalPower(); p > maxP {
			maxP = p
		}
	})
	return func() float64 { return maxP }
}

// Makers returns every exhibit and experiment constructor in report order.
// Each entry is independent — it builds its own engines and managers — so
// callers may evaluate them in any order or in parallel.
func Makers() []func(seed uint64) Result {
	return []func(seed uint64) Result{
		func(uint64) Result { return T1TableI() },
		func(uint64) Result { return T2TableII() },
		func(uint64) Result { return F1ComponentDiagram() },
		func(uint64) Result { return F2WorldMap() },
		E1StaticCap,
		E2IdleShutdown,
		func(uint64) Result { return E3DVFS() },
		E4PowerSharing,
		E5Overprovision,
		E6Emergency,
		E7EnergyTag,
		E8Prediction,
		E9InterSystem,
		E10Layout,
		E11MS3,
		E12Backfill,
		E13GridAware,
		E14RuntimeBalance,
		E15Topology,
		E16CapabilityWindow,
		E17RampLimit,
		E18CoolingAware,
		E19Monitoring,
		E20FairShare,
		E21Resilience,
		E22CheckpointSweep,
		E24SLOWatchdog,
	}
}

// All runs every exhibit and experiment and returns the results in report
// order. The experiments execute across the runner's worker pool; the
// output is byte-identical at any parallelism.
func All(seed uint64) []Result {
	mk := Makers()
	return runner.Map(len(mk), func(i int) Result { return mk[i](seed) })
}
