package experiments

import (
	"fmt"

	"epajsrm/internal/checkpoint"
	"epajsrm/internal/cluster"
	"epajsrm/internal/core"
	"epajsrm/internal/fault"
	"epajsrm/internal/power"
	"epajsrm/internal/report"
	"epajsrm/internal/runner"
	"epajsrm/internal/sched"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

// E22CheckpointSweep crosses checkpoint interval with fault rate: the
// standard workload runs with no checkpointing, a short interval, a long
// interval, and the Young/Daly optimal interval derived from the fault
// profile's node MTBF — each under a fault-free and a crash-heavy machine
// (PR 1's high node-fault rate: MTBF 2 d, MTTR 1 h). The exhibit shows the
// checkpoint trade the Young/Daly formula optimizes: on a healthy machine
// every checkpoint is pure overhead, on a crashing one bounded rollback
// beats requeue-from-scratch. The checkpoint-disabled, fault-free cell
// must reproduce the no-injector baseline exactly.
func E22CheckpointSweep(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 250
	horizon := 4 * simulator.Day
	n := 300

	crashy := fault.Profile{NodeMTBF: 2 * simulator.Day, NodeMTTR: simulator.Hour}

	// Young/Daly for the typical (8-node) job of this workload on the
	// crashy machine: sqrt(2 · write · MTBF_job).
	base := checkpoint.Config{BWGBps: 10, StateFrac: 0.3, IOPowerW: 30}
	memGB := cluster.DefaultConfig().MemGB
	ydInterval := checkpoint.OptimalInterval(
		base.WriteTime(8, memGB),
		checkpoint.JobMTBF(crashy.NodeMTBF, 8))

	withInterval := func(iv simulator.Time) checkpoint.Config {
		c := base
		c.Interval = iv
		return c
	}
	configs := []struct {
		name string
		cfg  checkpoint.Config
	}{
		{"off", checkpoint.Config{}},
		{"30m", withInterval(30 * simulator.Minute)},
		{"2h", withInterval(2 * simulator.Hour)},
		{fmt.Sprintf("young-daly (%s)", ydInterval.String()), withInterval(ydInterval)},
	}
	faults := []struct {
		name string
		prof *fault.Profile
	}{
		{"zero", &fault.Profile{}}, // idle injector: must be free
		{"high", &crashy},
	}

	run := func(cfg checkpoint.Config, prof *fault.Profile) (*core.Manager, *fault.Injector) {
		m := traced(core.NewManager(core.Options{
			Cluster:    cluster.DefaultConfig(),
			Scheduler:  sched.EASY{},
			Seed:       seed,
			Facility:   power.DefaultFacility(),
			Checkpoint: cfg,
		}))
		feed(m, spec, seed^17, n)
		var in *fault.Injector
		if prof != nil {
			in = fault.New(m, *prof, seed^0x1fab)
			in.Start()
		}
		m.Run(horizon)
		return m, in
	}

	tbl := report.Table{
		Header: []string{"checkpoint", "faults", "goodput (node-h/day)", "completed", "killed",
			"ckpts", "restores", "lost work (node-h)", "io stall (h)"},
	}
	type cell struct {
		m  *core.Manager
		in *fault.Injector
	}
	// Run 0 is the no-injector reference; run 1+fi*len(configs)+ci is the
	// (faults[fi], configs[ci]) sweep cell.
	cells := runner.Map(1+len(faults)*len(configs), func(k int) cell {
		if k == 0 {
			m, in := run(checkpoint.Config{}, nil)
			return cell{m, in}
		}
		k--
		m, in := run(configs[k%len(configs)].cfg, faults[k/len(configs)].prof)
		return cell{m, in}
	})
	// The reference: no injector attached at all, substrate disabled. The
	// off/zero cell below must match it bit-for-bit.
	baseM := cells[0].m
	values := map[string]float64{
		"yd_interval_s":  float64(ydInterval),
		"goodput_base":   baseM.Metrics.NodeSecondsDone,
		"completed_base": float64(baseM.Metrics.Completed),
	}
	key := func(cfgName string) string {
		if len(cfgName) > 2 && cfgName[:2] == "yo" {
			return "yd"
		}
		return cfgName
	}
	for fi, fl := range faults {
		for ci, c := range configs {
			m, in := cells[1+fi*len(configs)+ci].m, cells[1+fi*len(configs)+ci].in
			mt := &m.Metrics
			tbl.Rows = append(tbl.Rows, []string{
				c.name, fl.name,
				fmt.Sprintf("%.0f", mt.ThroughputNodeHoursPerDay()),
				fmt.Sprint(mt.Completed),
				fmt.Sprint(mt.Killed),
				fmt.Sprint(mt.CheckpointsWritten),
				fmt.Sprint(mt.CheckpointRestores),
				fmt.Sprintf("%.0f", mt.LostWorkSeconds/3600),
				fmt.Sprintf("%.1f", (mt.CheckpointWriteSeconds+mt.RestartReadSeconds)/3600),
			})
			k := key(c.name) + "_" + fl.name
			values["goodput_"+k] = mt.NodeSecondsDone
			values["completed_"+k] = float64(mt.Completed)
			values["killed_"+k] = float64(mt.Killed)
			values["ckpts_"+k] = float64(mt.CheckpointsWritten)
			values["restores_"+k] = float64(mt.CheckpointRestores)
			values["lostwork_"+k] = mt.LostWorkSeconds
			if in != nil {
				values["crashes_"+k] = float64(in.Crashes.Value())
			}
		}
	}

	notes := []string{
		"checkpoint-off / fault-free reproduces the no-injector baseline exactly (disabled substrate is free)",
		"on the crashy machine checkpointing recovers goodput: bounded rollback replaces requeue-from-scratch",
		"on the healthy machine checkpoint I/O is pure overhead — the interval trades overhead against exposure",
		fmt.Sprintf("Young/Daly interval for the 8-node job at MTBF 2d: %s", ydInterval.String()),
	}
	return Result{
		ID:     "E22",
		Title:  "Checkpoint interval × fault rate (goodput recovery under crashes)",
		Table:  tbl,
		Notes:  notes,
		Values: values,
	}
}
