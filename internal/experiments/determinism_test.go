package experiments

import (
	"testing"

	"epajsrm/internal/runner"
)

// renderAll renders every experiment at the given worker bound, returning
// the rendered text per report slot.
func renderAll(seed uint64, procs int) []string {
	prev := runner.SetProcs(procs)
	defer runner.SetProcs(prev)
	rs := All(seed)
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Render()
	}
	return out
}

// TestGoldenParallelMatchesSequential is the harness's determinism gate:
// the full experiment suite rendered with one worker must be byte-identical
// to the same suite rendered with several. Any scheduling-order dependence
// (map iteration feeding a table, shared mutable state between runs,
// float accumulation order varying with interleaving) breaks this.
func TestGoldenParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	seq := renderAll(2, 1)
	par := renderAll(2, 4)
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("experiment slot %d differs between procs=1 and procs=4:\n--- sequential ---\n%s\n--- parallel ---\n%s",
				i, seq[i], par[i])
		}
	}
}

// TestRenderTwiceIdentical re-runs each experiment and asserts the render
// is reproducible run-to-run in one process — the second half of the
// determinism contract (no dependence on leftover global state, timers, or
// map iteration order).
func TestRenderTwiceIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	mk := Makers()
	for i := range mk {
		a := mk[i](3).Render()
		b := mk[i](3).Render()
		if a != b {
			t.Errorf("experiment slot %d renders differently on re-run:\n--- first ---\n%s\n--- second ---\n%s", i, a, b)
		}
	}
}
