package experiments

import (
	"fmt"

	"epajsrm/internal/core"
	"epajsrm/internal/fault"
	"epajsrm/internal/policy"
	"epajsrm/internal/report"
	"epajsrm/internal/runner"
	"epajsrm/internal/simulator"
	"epajsrm/internal/workload"
)

// probeCapViolation installs a periodic probe that integrates the virtual
// seconds the system spends above limitW, and returns a getter.
func probeCapViolation(m *core.Manager, limitW float64, step simulator.Time) func() float64 {
	viol := 0.0
	m.Eng.Every(step, "viol-probe", func(simulator.Time) {
		if m.Pw.TotalPower() > limitW {
			viol += float64(step)
		}
	})
	return func() float64 { return viol }
}

// E21Resilience runs the standard workload under increasing fault rates —
// node crashes, telemetry dropout, cap-actuation failures — with the full
// resilience stack engaged (requeue-on-failure, actuation retry, telemetry
// guard fallback). It reports goodput, requeue counts, and cap-violation
// seconds per fault level. The zero-fault level must reproduce the plain
// no-injector baseline exactly: an idle injector is free.
func E21Resilience(seed uint64) Result {
	spec := workload.DefaultSpec()
	spec.ArrivalMeanSec = 250
	horizon := 4 * simulator.Day
	n := 300
	limit := 64*90 + 22*270.0

	levels := []struct {
		name string
		prof fault.Profile
	}{
		{"zero", fault.Profile{}},
		{"moderate", fault.Profile{
			NodeMTBF: 8 * simulator.Day, NodeMTTR: 30 * simulator.Minute,
			SensorMTBF: simulator.Day, SensorMTTR: 10 * simulator.Minute,
			SensorStuckProb: 0.5, ActuationFailProb: 0.1,
		}},
		{"high", fault.Profile{
			NodeMTBF: 2 * simulator.Day, NodeMTTR: simulator.Hour,
			SensorMTBF: 6 * simulator.Hour, SensorMTTR: 20 * simulator.Minute,
			SensorStuckProb: 0.5, ActuationFailProb: 0.3,
		}},
	}

	run := func(prof *fault.Profile) (*core.Manager, *fault.Injector, float64) {
		m := stdMgr(seed, 0, nil,
			&policy.Emergency{LimitW: limit, PreRunGate: true},
			&policy.TelemetryGuard{FallbackCapW: 250})
		feed(m, spec, seed^17, n)
		violFn := probeCapViolation(m, limit, 30*simulator.Second)
		var in *fault.Injector
		if prof != nil {
			in = fault.New(m, *prof, seed^0x1fab)
			in.Start()
		}
		m.Run(horizon)
		return m, in, violFn()
	}

	type cell struct {
		m    *core.Manager
		in   *fault.Injector
		viol float64
	}
	// Run 0 is the no-injector baseline; run i+1 is fault level i.
	cells := runner.Map(len(levels)+1, func(k int) cell {
		var prof *fault.Profile
		if k > 0 {
			prof = &levels[k-1].prof
		}
		m, in, viol := run(prof)
		return cell{m, in, viol}
	})
	base, baseViol := cells[0].m, cells[0].viol

	tbl := report.Table{
		Header: []string{"fault level", "goodput (node-h/day)", "completed", "crashes", "requeues", "killed", "lost work (node-h)", "cap-violation (s)"},
	}
	tbl.Rows = append(tbl.Rows, []string{
		"baseline (no injector)",
		fmt.Sprintf("%.0f", base.Metrics.ThroughputNodeHoursPerDay()),
		fmt.Sprint(base.Metrics.Completed), "-", "-",
		fmt.Sprint(base.Metrics.Killed),
		fmt.Sprintf("%.0f", base.Metrics.LostWorkSeconds/3600),
		fmt.Sprintf("%.0f", baseViol),
	})
	values := map[string]float64{
		"goodput_base":  base.Metrics.NodeSecondsDone,
		"viol_base":     baseViol,
		"lostwork_base": base.Metrics.LostWorkSeconds,
	}
	var notes []string
	for i, lv := range levels {
		m, in, viol := cells[i+1].m, cells[i+1].in, cells[i+1].viol
		tbl.Rows = append(tbl.Rows, []string{
			lv.name,
			fmt.Sprintf("%.0f", m.Metrics.ThroughputNodeHoursPerDay()),
			fmt.Sprint(m.Metrics.Completed),
			fmt.Sprint(in.Crashes.Value()),
			fmt.Sprint(m.Metrics.Requeues),
			fmt.Sprint(m.Metrics.Killed),
			fmt.Sprintf("%.0f", m.Metrics.LostWorkSeconds/3600),
			fmt.Sprintf("%.0f", viol),
		})
		values["goodput_"+lv.name] = m.Metrics.NodeSecondsDone
		values["completed_"+lv.name] = float64(m.Metrics.Completed)
		values["crashes_"+lv.name] = float64(in.Crashes.Value())
		values["requeues_"+lv.name] = float64(m.Metrics.Requeues)
		values["viol_"+lv.name] = viol
		values["lostwork_"+lv.name] = m.Metrics.LostWorkSeconds
		if lv.prof.Zero() {
			continue
		}
		notes = append(notes, fmt.Sprintf("%s: %s", lv.name, in.Summary()))
	}
	notes = append(notes,
		"zero-fault level reproduces the no-injector baseline exactly (idle injector is free)",
		"goodput degrades and requeues grow with the fault rate; the control loop keeps running under degraded telemetry")

	return Result{
		ID:     "E21",
		Title:  "Resilience under injected faults (node crashes, sensor dropout, actuation failures)",
		Table:  tbl,
		Notes:  notes,
		Values: values,
	}
}
