package experiments

import "testing"

func TestE20FairShareShape(t *testing.T) {
	r := E20FairShare(1)
	// The light users' service quality must improve dramatically...
	if r.Values["light_slow_fs"] >= r.Values["light_slow_base"]/2 {
		t.Fatalf("fairshare barely helped light users: %v", r.Values)
	}
	// ...approaching dedicated-machine service (the mean is dragged by a
	// few short jobs whose bounded slowdown punishes any wait at all).
	if r.Values["light_slow_fs"] > 6 {
		t.Fatalf("light users still queue badly: %v", r.Values["light_slow_fs"])
	}
	if r.Values["light_fs"] > r.Values["light_base"] {
		t.Fatalf("fairshare raised light users' wait: %v", r.Values)
	}
}
