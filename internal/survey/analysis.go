package survey

import (
	"fmt"
	"sort"
	"strings"

	"epajsrm/internal/report"
)

// ActivityTable generates Table I (part=1) or Table II (part=2) of the
// paper from the structured center data.
func ActivityTable(part int) report.Table {
	t := report.Table{
		Title:    fmt.Sprintf("TABLE %s — Part %d of the summary of the answers from each center.", roman(part), part),
		Header:   []string{"Center", "Research Activities", "Technology Development with Intent to Deploy", "Production Development"},
		MaxWidth: 40,
	}
	for _, c := range Centers() {
		if c.TablePart != part {
			continue
		}
		cells := [3][]string{}
		for _, a := range c.Activities {
			cells[a.Maturity] = append(cells[a.Maturity], a.Desc)
		}
		row := []string{c.Name}
		for m := 0; m < 3; m++ {
			if len(cells[m]) == 0 {
				row = append(row, "—")
			} else {
				row = append(row, strings.Join(cells[m], "\n"))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func roman(n int) string {
	switch n {
	case 1:
		return "I"
	case 2:
		return "II"
	default:
		return fmt.Sprint(n)
	}
}

// MapPoints returns the nine centers as Figure-2 map points.
func MapPoints() []report.MapPoint {
	var out []report.MapPoint
	for _, c := range Centers() {
		out = append(out, report.MapPoint{Label: c.Name, Lat: c.Lat, Lon: c.Lon})
	}
	return out
}

// CapabilityCount is one row of the initial analysis: how many sites
// exercise a capability, split by maturity.
type CapabilityCount struct {
	Capability Capability
	Research   int
	TechDev    int
	Production int
	Sites      int // distinct sites at any maturity
}

// Analyze performs the paper's "initial analysis": per-capability site
// counts by maturity, sorted by total adoption. This is the quantitative
// skeleton behind §V's observation that all sites have some production
// deployment while research/tech-dev coverage varies.
func Analyze() []CapabilityCount {
	counts := make([]CapabilityCount, capCount)
	for i := range counts {
		counts[i].Capability = Capability(i)
	}
	for _, c := range Centers() {
		seenAny := map[Capability]bool{}
		seenAt := map[Maturity]map[Capability]bool{
			Research: {}, TechDev: {}, Production: {},
		}
		for _, a := range c.Activities {
			for _, cap := range a.Capabilities {
				seenAt[a.Maturity][cap] = true
				seenAny[cap] = true
			}
		}
		for cap := range seenAny {
			counts[cap].Sites++
		}
		for cap := range seenAt[Research] {
			counts[cap].Research++
		}
		for cap := range seenAt[TechDev] {
			counts[cap].TechDev++
		}
		for cap := range seenAt[Production] {
			counts[cap].Production++
		}
	}
	sort.SliceStable(counts, func(i, j int) bool {
		if counts[i].Sites != counts[j].Sites {
			return counts[i].Sites > counts[j].Sites
		}
		return counts[i].Production > counts[j].Production
	})
	return counts
}

// AnalysisTable renders the capability-adoption analysis.
func AnalysisTable() report.Table {
	t := report.Table{
		Title:  "Initial analysis — capability adoption across the nine centers",
		Header: []string{"Capability", "Research", "Tech-Dev", "Production", "Sites (any)"},
	}
	for _, c := range Analyze() {
		t.Rows = append(t.Rows, []string{
			c.Capability.String(),
			fmt.Sprint(c.Research),
			fmt.Sprint(c.TechDev),
			fmt.Sprint(c.Production),
			fmt.Sprint(c.Sites),
		})
	}
	return t
}

// CommonThemes returns capabilities present (at any maturity) at >= minSites
// sites — the "similarities across centers" the survey set out to find.
func CommonThemes(minSites int) []Capability {
	var out []Capability
	for _, c := range Analyze() {
		if c.Sites >= minSites {
			out = append(out, c.Capability)
		}
	}
	return out
}

// RegionCount summarizes one geographic region's participation — §III
// stresses the geographic diversity (Asia, Europe, United States, plus
// KAUST in the Middle East).
type RegionCount struct {
	Region     string
	Sites      int
	Production int // production activities across the region's sites
	Research   int
	TechDev    int
}

// ByRegion aggregates activities per region, sorted by site count then
// name.
func ByRegion() []RegionCount {
	agg := map[string]*RegionCount{}
	for _, c := range Centers() {
		rc := agg[c.Region]
		if rc == nil {
			rc = &RegionCount{Region: c.Region}
			agg[c.Region] = rc
		}
		rc.Sites++
		for _, a := range c.Activities {
			switch a.Maturity {
			case Production:
				rc.Production++
			case Research:
				rc.Research++
			case TechDev:
				rc.TechDev++
			}
		}
	}
	var out []RegionCount
	for _, rc := range agg {
		out = append(out, *rc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sites != out[j].Sites {
			return out[i].Sites > out[j].Sites
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// RegionTable renders the per-region aggregation.
func RegionTable() report.Table {
	t := report.Table{
		Title:  "Participation and activity by geographic region (paper §III)",
		Header: []string{"Region", "Sites", "Research", "Tech-Dev", "Production"},
	}
	for _, rc := range ByRegion() {
		t.Rows = append(t.Rows, []string{
			rc.Region, fmt.Sprint(rc.Sites),
			fmt.Sprint(rc.Research), fmt.Sprint(rc.TechDev), fmt.Sprint(rc.Production),
		})
	}
	return t
}

// Narrative produces the §V-style prose summary of the initial analysis —
// the machine-generated counterpart of the paper's "prelude to survey
// analysis" paragraphs.
func Narrative() string {
	var b strings.Builder
	cs := Centers()
	counts := Analyze()
	regions := ByRegion()

	fmt.Fprintf(&b, "Nine Top500 centers across %d regions participated: ", len(regions))
	for i, rc := range regions {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s (%d)", rc.Region, rc.Sites)
	}
	b.WriteString(".\n\n")

	prodAll := true
	for _, c := range cs {
		hasProd := false
		for _, a := range c.Activities {
			if a.Maturity == Production {
				hasProd = true
			}
		}
		prodAll = prodAll && hasProd
	}
	if prodAll {
		b.WriteString("Every surveyed site operates at least one EPA JSRM capability in production — the survey's selection criterion made real deployment, not intent, the bar.\n\n")
	}

	b.WriteString("Most common capabilities (sites at any maturity):\n")
	for i, c := range counts {
		if i >= 5 {
			break
		}
		fmt.Fprintf(&b, "  %d. %s — %d of 9 sites (%d in production)\n",
			i+1, c.Capability, c.Sites, c.Production)
	}
	b.WriteString("\nRarest capabilities — the survey's candidates for technology transfer:\n")
	for i := len(counts) - 1; i >= len(counts)-3 && i >= 0; i-- {
		c := counts[i]
		fmt.Fprintf(&b, "  - %s — only %d site(s)\n", c.Capability, c.Sites)
	}
	return b.String()
}

// Invariants checks the structural facts the paper states; tests assert
// them and callers may use it as a data self-check. It returns a list of
// violated facts (empty means all hold).
func Invariants() []string {
	var bad []string
	cs := Centers()
	if len(cs) != 9 {
		bad = append(bad, fmt.Sprintf("want 9 centers, have %d", len(cs)))
	}
	part1, part2 := 0, 0
	regions := map[string]bool{}
	for _, c := range cs {
		regions[c.Region] = true
		switch c.TablePart {
		case 1:
			part1++
		case 2:
			part2++
		default:
			bad = append(bad, c.Name+": invalid table part")
		}
		// §V: "all sites have some type of production deployment".
		prod := 0
		for _, a := range c.Activities {
			if a.Maturity == Production {
				prod++
			}
		}
		if prod == 0 {
			bad = append(bad, c.Name+": no production activity")
		}
	}
	if part1 != 5 || part2 != 4 {
		bad = append(bad, fmt.Sprintf("table split %d/%d, want 5/4", part1, part2))
	}
	for _, want := range []string{"Asia", "Europe", "United States"} {
		if !regions[want] {
			bad = append(bad, "missing region "+want)
		}
	}
	return bad
}
