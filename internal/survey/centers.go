package survey

// Maturity is the paper's three-way categorization of site activities.
type Maturity int

const (
	// Research denotes exploratory research activities.
	Research Maturity = iota
	// TechDev denotes technology development with intent to deploy.
	TechDev
	// Production denotes capabilities actively deployed in production.
	Production
)

var maturityNames = [...]string{"Research Activities", "Technology Development with Intent to Deploy", "Production Development"}

func (m Maturity) String() string { return maturityNames[m] }

// Capability is the technique taxonomy used by the initial analysis to
// find common themes across sites; each activity is labelled with the
// capabilities it involves.
type Capability int

const (
	CapPowerCapping Capability = iota
	CapDVFS
	CapNodeOnOff
	CapEnergyReporting
	CapPrediction
	CapEmergencyResponse
	CapGridIntegration
	CapSchedulerIntegration
	CapMonitoring
	CapInterSystemBudget
	CapLayoutAware
	CapVendorCollab
	capCount
)

var capabilityNames = [...]string{
	"power capping", "DVFS/frequency control", "node power on/off",
	"energy reporting to users", "power/energy prediction",
	"emergency power response", "electrical grid integration",
	"scheduler/RM integration", "power & energy monitoring",
	"inter-system budget sharing", "infrastructure layout awareness",
	"vendor collaboration",
}

func (c Capability) String() string { return capabilityNames[c] }

// AllCapabilities enumerates the taxonomy.
func AllCapabilities() []Capability {
	out := make([]Capability, capCount)
	for i := range out {
		out[i] = Capability(i)
	}
	return out
}

// Activity is one cell entry in Table I/II: a described effort at a center
// at a given maturity, labelled with the capabilities it exercises.
type Activity struct {
	Maturity     Maturity
	Desc         string
	Capabilities []Capability
}

// Center is one surveyed site.
type Center struct {
	Name    string
	Long    string // full institution name
	Country string
	Region  string // Asia, Europe, United States, Middle East
	Lat     float64
	Lon     float64
	// TablePart is 1 for Table I, 2 for Table II, matching the paper's
	// split.
	TablePart  int
	Activities []Activity
}

// Centers returns the nine participating sites with their Table I/II
// activity summaries transcribed into the structured model. Order matches
// the paper's listing in §III.
func Centers() []Center {
	return []Center{
		{
			Name: "RIKEN", Long: "RIKEN Advanced Institute for Computational Science",
			Country: "Japan", Region: "Asia", Lat: 34.65, Lon: 135.22, TablePart: 1,
			Activities: []Activity{
				{Research, "Integrating job scheduler info with decision to use grid vs. gas turbine energy",
					[]Capability{CapGridIntegration, CapSchedulerIntegration}},
				{TechDev, "Power-aware job scheduling for Post-K, with Fujitsu",
					[]Capability{CapSchedulerIntegration, CapVendorCollab}},
				{Production, "3 days for large jobs each month",
					[]Capability{CapSchedulerIntegration}},
				{Production, "Automated emergency job killing if power limit exceeded",
					[]Capability{CapEmergencyResponse, CapPowerCapping}},
				{Production, "Pre-run estimate of power usage of each job, based on temperature",
					[]Capability{CapPrediction}},
			},
		},
		{
			Name: "Tokyo Tech", Long: "Tokyo Institute of Technology (GSIC)",
			Country: "Japan", Region: "Asia", Lat: 35.61, Lon: 139.68, TablePart: 1,
			Activities: []Activity{
				{Research, "Activities to facilitate Production Development", nil},
				{Research, "Analyze collected power and energy info archived long term and use for EPA scheduling",
					[]Capability{CapMonitoring, CapPrediction}},
				{TechDev, "Inter-system power capping. TSUBAME2 and TSUBAME3 will need to share the facility power budget.",
					[]Capability{CapInterSystemBudget, CapPowerCapping}},
				{TechDev, "Gives users mark on how well they used power and energy",
					[]Capability{CapEnergyReporting}},
				{Production, "Resource manager dynamically boots or shuts down nodes to stay under power cap (summer only, enforced over ~30 min window). Interacts with job scheduler to avoid killing jobs. NEC implemented, works cooperatively with PBS Pro.",
					[]Capability{CapNodeOnOff, CapPowerCapping, CapSchedulerIntegration, CapVendorCollab}},
				{Production, "Resource manager shuts down nodes that have been idle for a long time.",
					[]Capability{CapNodeOnOff}},
				{Production, "Uses virtual machines to split compute nodes. (Complicates physical node shutdown.)", nil},
				{Production, "Energy use provided to users at end of every job",
					[]Capability{CapEnergyReporting}},
			},
		},
		{
			Name: "CEA", Long: "Commissariat à l'énergie atomique et aux énergies alternatives",
			Country: "France", Region: "Europe", Lat: 48.71, Lon: 2.15, TablePart: 1,
			Activities: []Activity{
				{Research, "Investigating how to use and apply mpi_yield_when_idle",
					[]Capability{CapDVFS}},
				{Research, "Investigating with BULL power capping and DVFS",
					[]Capability{CapPowerCapping, CapDVFS, CapVendorCollab}},
				{TechDev, "Together with BULL developing power adaptive scheduling in SLURM",
					[]Capability{CapSchedulerIntegration, CapVendorCollab}},
				{TechDev, "Developing 'layout logic' in SLURM, be able to tell what PDUs/Chillers a node or rack depends on and avoid scheduling jobs on them when maintenance",
					[]Capability{CapLayoutAware, CapSchedulerIntegration}},
				{Production, "Manually shutting down nodes to shift power budget between systems",
					[]Capability{CapNodeOnOff, CapInterSystemBudget}},
			},
		},
		{
			Name: "KAUST", Long: "King Abdullah University of Science and Technology",
			Country: "Saudi Arabia", Region: "Middle East", Lat: 22.31, Lon: 39.10, TablePart: 1,
			Activities: []Activity{
				{Research, "Monitoring and managing power usage under data center power and cooling limits",
					[]Capability{CapMonitoring, CapPowerCapping}},
				{TechDev, "Analyzing and detecting most power hungry applications in production. Developing optimal power limit constraint strategy for users on Shaheen Cray XC40, while maintaining several HPC systems in production (BG/P and clusters)",
					[]Capability{CapPrediction, CapPowerCapping}},
				{Production, "Static power capping via Cray CAPMC. 30% of nodes run uncapped, 70% run with 270 W power cap.",
					[]Capability{CapPowerCapping}},
				{Production, "Using SLURM Dynamic Power Management (SDPM) that interfaces with Cray CAPMC (KAUST worked with SchedMD to develop SDPM)",
					[]Capability{CapPowerCapping, CapSchedulerIntegration, CapVendorCollab}},
			},
		},
		{
			Name: "LRZ", Long: "Leibniz Supercomputing Centre",
			Country: "Germany", Region: "Europe", Lat: 48.26, Lon: 11.67, TablePart: 1,
			Activities: []Activity{
				{Research, "Investigating merging SLURM and GEOPM for system energy & power control.",
					[]Capability{CapDVFS, CapSchedulerIntegration}},
				{Research, "Investigating scheduling for power instead of energy",
					[]Capability{CapSchedulerIntegration}},
				{Research, "Linking job scheduler with IT infrastructure + cooling; scheduler may delay jobs when IT infrastructure is particularly inefficient",
					[]Capability{CapLayoutAware, CapSchedulerIntegration}},
				{TechDev, "Working on adding energy-aware scheduling capabilities to SLURM, similar to what they have with LoadLeveler today.",
					[]Capability{CapSchedulerIntegration, CapDVFS}},
				{Production, "First time new app runs: characterized for frequency, runtime and energy.",
					[]Capability{CapPrediction, CapDVFS}},
				{Production, "Administrator selects job scheduling goal, energy to solution or best performance.",
					[]Capability{CapDVFS, CapSchedulerIntegration}},
				{Production, "LRZ worked with IBM on energy-aware scheduling support in LoadLeveler, now ported to LSF.",
					[]Capability{CapVendorCollab, CapSchedulerIntegration}},
			},
		},
		{
			Name: "STFC", Long: "Science and Technology Facilities Council, Hartree Centre",
			Country: "United Kingdom", Region: "Europe", Lat: 53.34, Lon: -2.64, TablePart: 2,
			Activities: []Activity{
				{Research, "IBM/LSF energy-aware scheduling is experimented with on small-scale (360 node) system",
					[]Capability{CapSchedulerIntegration, CapDVFS, CapVendorCollab}},
				{Research, "Programmable interface (PowerAPI-based) for application power measurements of code segments (with interface to JSRM)",
					[]Capability{CapMonitoring}},
				{Research, "Investigation of power aware policies using higher level abstract e.g., GEOPM and Job Scheduler.",
					[]Capability{CapDVFS, CapSchedulerIntegration}},
				{TechDev, "Deployment of reporting tool for user power consumption at the job level. (Fine as well as coarse granularity)",
					[]Capability{CapEnergyReporting, CapMonitoring}},
				{Production, "Continuously collecting power and energy system monitoring info, data center, machine, and job levels",
					[]Capability{CapMonitoring}},
			},
		},
		{
			Name: "Trinity (LANL+Sandia)", Long: "Los Alamos & Sandia National Laboratories (ACES)",
			Country: "United States", Region: "United States", Lat: 35.88, Lon: -106.30, TablePart: 2,
			Activities: []Activity{
				{Research, "Analyzing power system monitoring info to assess potential of EPA scheduling, gather traces for evaluating EPA approaches.",
					[]Capability{CapMonitoring, CapPrediction}},
				{TechDev, "EPA job scheduling support developed with Adaptive Inc. for MOAB/Torque, interfaces with Cray CAPMC and Power API. Trinity is now using SLURM, but MOAB work remains available for future use.",
					[]Capability{CapSchedulerIntegration, CapPowerCapping, CapVendorCollab}},
				{TechDev, "Developed Power API implementation with Cray, utilized by MOAB/Torque for EPA job scheduling.",
					[]Capability{CapMonitoring, CapVendorCollab}},
				{Production, "Cray CAPMC power capping infrastructure, out-of-band control, administrator ability to set system-wide and node-level power caps (available on all Cray XC systems).",
					[]Capability{CapPowerCapping}},
			},
		},
		{
			Name: "CINECA", Long: "CINECA Interuniversity Consortium",
			Country: "Italy", Region: "Europe", Lat: 44.49, Lon: 11.27, TablePart: 2,
			Activities: []Activity{
				{Research, "Scalable power monitoring, used to predict per-job power use and used to generate predictive models for node power and temperature evolution (with University of Bologna)",
					[]Capability{CapMonitoring, CapPrediction}},
				{TechDev, "Developing together with E4 EPA job scheduling support in SLURM. Also tracking EPA SLURM work being done by BULL and SchedMD.",
					[]Capability{CapSchedulerIntegration, CapVendorCollab}},
				{Production, "EPA job scheduling on Eurora system (now decommissioned) using PBSPro, collaboration with Altair",
					[]Capability{CapSchedulerIntegration, CapVendorCollab}},
			},
		},
		{
			Name: "JCAHPC", Long: "Joint Center for Advanced HPC (U. Tsukuba + U. Tokyo)",
			Country: "Japan", Region: "Asia", Lat: 35.90, Lon: 139.94, TablePart: 2,
			Activities: []Activity{
				{Research, "Activities to facilitate Production Development.", nil},
				{Production, "Ability to set power caps for groups of nodes via the resource manager (Fujitsu proprietary product)",
					[]Capability{CapPowerCapping, CapVendorCollab}},
				{Production, "Manual emergency response, admin sets power cap.",
					[]Capability{CapEmergencyResponse, CapPowerCapping}},
				{Production, "Delivering post-job energy use reports to users.",
					[]Capability{CapEnergyReporting}},
			},
		},
	}
}
