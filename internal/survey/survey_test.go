package survey

import (
	"strings"
	"testing"
)

func TestInvariantsHold(t *testing.T) {
	if bad := Invariants(); len(bad) != 0 {
		t.Fatalf("survey data violates paper facts: %v", bad)
	}
}

func TestQuestionnaireShape(t *testing.T) {
	qs := Questionnaire()
	if len(qs) != 8 {
		t.Fatalf("questions = %d, want 8", len(qs))
	}
	for i, q := range qs {
		wantID := "Q" + string(rune('1'+i))
		if q.ID != wantID {
			t.Errorf("question %d id = %s, want %s", i, q.ID, wantID)
		}
		if q.Text == "" || q.Rationale == "" {
			t.Errorf("%s missing text or rationale", q.ID)
		}
	}
	// Q2, Q3, Q5, Q8 have subparts in the paper.
	for _, id := range []int{1, 2, 4, 7} {
		if len(qs[id].Subparts) == 0 {
			t.Errorf("%s should have subparts", qs[id].ID)
		}
	}
	// Q3(e) asks for the quantile statistics.
	if !strings.Contains(strings.Join(qs[2].Subparts, " "), "90th percentile") {
		t.Error("Q3 quantile subpart missing")
	}
}

func TestCentersMatchPaperList(t *testing.T) {
	want := []string{
		"RIKEN", "Tokyo Tech", "CEA", "KAUST", "LRZ",
		"STFC", "Trinity (LANL+Sandia)", "CINECA", "JCAHPC",
	}
	cs := Centers()
	if len(cs) != len(want) {
		t.Fatalf("centers = %d", len(cs))
	}
	for i, c := range cs {
		if c.Name != want[i] {
			t.Errorf("center %d = %s, want %s", i, c.Name, want[i])
		}
	}
}

func TestTableIHasPaperRows(t *testing.T) {
	tbl := ActivityTable(1)
	out := tbl.CSV() // unwrapped cells, so verbatim phrases stay intact
	// Spot-check verbatim phrases from the paper's Table I.
	for _, phrase := range []string{
		"RIKEN", "Tokyo Tech", "CEA", "KAUST", "LRZ",
		"Automated emergency job killing",
		"30% of nodes run uncapped, 70% run with 270 W power cap",
		"energy to solution or best performance",
		"TSUBAME2 and TSUBAME3",
		"layout logic",
	} {
		if !strings.Contains(out, phrase) {
			t.Errorf("Table I missing %q", phrase)
		}
	}
	if strings.Contains(out, "STFC") {
		t.Error("Table I should not contain Table II centers")
	}
}

func TestTableIIHasPaperRows(t *testing.T) {
	out := ActivityTable(2).CSV()
	for _, phrase := range []string{
		"STFC", "Trinity (LANL+Sandia)", "CINECA", "JCAHPC",
		"Cray CAPMC power capping infrastructure",
		"PowerAPI-based",
		"Eurora system",
		"Delivering post-job energy use reports to users",
	} {
		if !strings.Contains(out, phrase) {
			t.Errorf("Table II missing %q", phrase)
		}
	}
	// JCAHPC has no tech-dev activity: the cell renders as an em dash,
	// matching the paper's empty cell.
	if !strings.Contains(out, "—") {
		t.Error("empty cell marker missing")
	}
}

func TestMapPointsCoverNineSites(t *testing.T) {
	pts := MapPoints()
	if len(pts) != 9 {
		t.Fatalf("map points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Lat == 0 && p.Lon == 0 {
			t.Errorf("%s has null island coordinates", p.Label)
		}
		if p.Lat < -90 || p.Lat > 90 || p.Lon < -180 || p.Lon > 180 {
			t.Errorf("%s coordinates out of range", p.Label)
		}
	}
}

func TestAnalyzeCounts(t *testing.T) {
	counts := Analyze()
	byName := map[string]CapabilityCount{}
	for _, c := range counts {
		byName[c.Capability.String()] = c
		if c.Sites > 9 || c.Research > 9 || c.TechDev > 9 || c.Production > 9 {
			t.Fatalf("impossible count: %+v", c)
		}
		if c.Sites == 0 {
			t.Errorf("capability %s unused — taxonomy stale", c.Capability)
		}
	}
	// Hand-checked facts from Tables I/II:
	// Power capping production sites: RIKEN, Tokyo Tech, KAUST, Trinity,
	// JCAHPC = 5.
	if got := byName["power capping"].Production; got != 5 {
		t.Errorf("power capping production sites = %d, want 5", got)
	}
	// Energy reporting production: Tokyo Tech, JCAHPC = 2 (STFC's is
	// tech-dev).
	if got := byName["energy reporting to users"].Production; got != 2 {
		t.Errorf("energy reporting production = %d, want 2", got)
	}
	if got := byName["energy reporting to users"].TechDev; got != 2 {
		t.Errorf("energy reporting tech-dev = %d, want 2 (Tokyo Tech mark, STFC tool)", got)
	}
	// Grid integration is rare: only RIKEN.
	if got := byName["electrical grid integration"].Sites; got != 1 {
		t.Errorf("grid integration sites = %d, want 1", got)
	}
	// Scheduler/RM integration and power capping must rank among the top
	// themes (the survey's central finding: EPA work lands in the
	// scheduler/RM layer, and capping is the dominant mechanism).
	topFour := map[Capability]bool{}
	for _, c := range counts[:4] {
		topFour[c.Capability] = true
	}
	if !topFour[CapSchedulerIntegration] || !topFour[CapPowerCapping] {
		t.Errorf("top themes %v should include scheduler integration and power capping", counts[:4])
	}
}

func TestCommonThemes(t *testing.T) {
	themes := CommonThemes(5)
	if len(themes) == 0 {
		t.Fatal("no themes at >=5 sites; power capping alone should qualify")
	}
	seen := map[Capability]bool{}
	for _, th := range themes {
		seen[th] = true
	}
	if !seen[CapPowerCapping] {
		t.Error("power capping should be a common theme")
	}
	// Raising the bar shrinks (or keeps) the set.
	if len(CommonThemes(9)) > len(themes) {
		t.Error("themes not monotone in threshold")
	}
}

func TestAnalysisTableRenders(t *testing.T) {
	out := AnalysisTable().Render()
	if !strings.Contains(out, "power capping") || !strings.Contains(out, "Production") {
		t.Fatalf("analysis table malformed:\n%s", out)
	}
}

func TestActivityCapabilityLabelsConsistent(t *testing.T) {
	for _, c := range Centers() {
		for _, a := range c.Activities {
			for _, cap := range a.Capabilities {
				if int(cap) < 0 || int(cap) >= int(capCount) {
					t.Fatalf("%s activity has invalid capability %d", c.Name, cap)
				}
			}
			if a.Desc == "" {
				t.Fatalf("%s has an empty activity", c.Name)
			}
		}
	}
}

func TestByRegion(t *testing.T) {
	regions := ByRegion()
	bySites := map[string]int{}
	total := 0
	for _, rc := range regions {
		bySites[rc.Region] = rc.Sites
		total += rc.Sites
	}
	if total != 9 {
		t.Fatalf("region sites sum to %d", total)
	}
	if bySites["Europe"] != 4 || bySites["Asia"] != 3 || bySites["United States"] != 1 || bySites["Middle East"] != 1 {
		t.Fatalf("region split wrong: %v", bySites)
	}
	// Sorted by site count descending.
	for i := 1; i < len(regions); i++ {
		if regions[i].Sites > regions[i-1].Sites {
			t.Fatal("regions not sorted")
		}
	}
}

func TestRegionTableRenders(t *testing.T) {
	out := RegionTable().Render()
	for _, want := range []string{"Europe", "Asia", "United States", "Middle East"} {
		if !strings.Contains(out, want) {
			t.Fatalf("region table missing %s", want)
		}
	}
}

func TestNarrative(t *testing.T) {
	n := Narrative()
	for _, want := range []string{
		"Nine Top500 centers",
		"production",
		"Most common capabilities",
		"Rarest capabilities",
		"electrical grid integration",
	} {
		if !strings.Contains(n, want) {
			t.Fatalf("narrative missing %q:\n%s", want, n)
		}
	}
}
