// Package survey encodes the EE HPC WG EPA JSRM survey itself: the Q1–Q8
// questionnaire (paper §IV), the nine participating centers (§III), each
// center's activity summary (Tables I and II), and the initial analysis
// (maturity categorization and common-theme extraction) the paper's §V
// previews. The tables in the paper are *generated* from this data model
// by internal/report, which is the machine-checkable form of the paper's
// deliverable.
package survey

// Question is one survey question with its sub-questions and the rationale
// §IV gives for asking it.
type Question struct {
	ID        string
	Text      string
	Subparts  []string
	Rationale string
}

// Questionnaire returns the full Q1–Q8 instrument.
func Questionnaire() []Question {
	return []Question{
		{
			ID:        "Q1",
			Text:      "What motivated your site's development and implementation of energy or power aware job scheduling or resource management capabilities?",
			Rationale: "Determine each center's motivations and identify motives common among multiple centers.",
		},
		{
			ID:   "Q2",
			Text: "Please describe your data center and major high-performance computing system or systems where energy or power aware job scheduling and resource management capabilities have been deployed.",
			Subparts: []string{
				"Total site power budget or capacity in watts.",
				"Total site cooling capacity.",
				"Major systems: cabinets, nodes, cores; peak performance; node architecture, network, memory; peak, average, and idle power draw.",
			},
			Rationale: "Determine each center's hardware environment; any EPA JSRM approach must account for it.",
		},
		{
			ID:   "Q3",
			Text: "Describe the general workload on your high-performance computing system or systems.",
			Subparts: []string{
				"What is running right now — jobs, sizes, durations?",
				"What does the backlog of queued jobs look like?",
				"What is the throughput of your system (jobs per month)?",
				"Main scheduling goal; capability vs capacity percentage.",
				"Min, median, max, and 10th/25th/75th/90th percentile job size and wallclock time.",
			},
			Rationale: "Determine the typical workloads; EPA JSRM approaches must account for workload characteristics.",
		},
		{
			ID:        "Q4",
			Text:      "Describe the energy and power aware job scheduling and resource management capabilities of your large-scale high-performance computing system or systems.",
			Rationale: "The specific point of the questionnaire.",
		},
		{
			ID:   "Q5",
			Text: "List and briefly describe all of the elements that comprise your energy and power aware job scheduling and resource management capabilities.",
			Subparts: []string{
				"When was it implemented?",
				"Are these elements commercially available supported products?",
				"Has there been much non-portable/non-product work done?",
			},
			Rationale: "Identify how involved vendors are, and how heavily centers rely on one-off homegrown control systems.",
		},
		{
			ID:        "Q6",
			Text:      "Do you have application/task level joint optimization, such as topology-aware task allocation, to directly or indirectly improve energy consumption? Did you engage software development communities?",
			Rationale: "A positive response indicates a very high level of sophistication and likely application-developer involvement.",
		},
		{
			ID:        "Q7",
			Text:      "How well does your solution work? Advantages, disadvantages, results, benefits, unintended consequences?",
			Rationale: "Qualitative self-assessment; each center is the subject-matter expert for its unique solution.",
		},
		{
			ID:   "Q8",
			Text: "What are the next steps for the energy or power aware job scheduling and resource management capability you have developed?",
			Subparts: []string{
				"Do you intend to continue site development and/or product deployment?",
				"Will your planned next steps drive new requirements in procurement documents, NRE funding, etc.?",
			},
			Rationale: "Understand trajectories and upcoming procurement/NRE implications.",
		},
	}
}
