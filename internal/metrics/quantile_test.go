package metrics

import (
	"math"
	"testing"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestQuantileEmpty: an empty histogram has no distribution to estimate.
func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%g) on empty histogram = %g, want 0", q, got)
		}
	}
}

// TestQuantileSingleBucket: all mass in one finite bucket interpolates
// linearly between the bucket's edges (zero for the first bucket).
func TestQuantileSingleBucket(t *testing.T) {
	h := NewHistogram(10)
	for i := 0; i < 4; i++ {
		h.Observe(5) // bucket (−∞, 10], rendered as [0, 10]
	}
	if got := h.Quantile(0.5); !near(got, 5) {
		t.Fatalf("Quantile(0.5) = %g, want 5 (midpoint of [0,10])", got)
	}
	if got := h.Quantile(1); !near(got, 10) {
		t.Fatalf("Quantile(1) = %g, want the bucket bound 10", got)
	}
	if got := h.Quantile(0); !near(got, 0) {
		t.Fatalf("Quantile(0) = %g, want the bucket floor 0", got)
	}
}

// TestQuantileOverflowBucket: ranks landing in the +Inf overflow bucket
// clamp to the highest finite bound — the Prometheus convention.
func TestQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Observe(5)    // first bucket
	h.Observe(5000) // overflow
	h.Observe(6000) // overflow
	if got := h.Quantile(0.99); !near(got, 100) {
		t.Fatalf("Quantile(0.99) = %g, want highest finite bound 100", got)
	}
	// A histogram with *no* finite bounds has nothing to clamp to.
	inf := NewHistogram()
	inf.Observe(1)
	if got := inf.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile on bounds-less histogram = %g, want 0", got)
	}
}

// TestQuantileInterpolation: ranks interpolate linearly within the
// cumulative bucket they land in, across several buckets.
func TestQuantileInterpolation(t *testing.T) {
	h := NewHistogram(10, 20, 40)
	for i := 0; i < 10; i++ {
		h.Observe(5) // 10 in (0, 10]
	}
	for i := 0; i < 10; i++ {
		h.Observe(15) // 10 in (10, 20]
	}
	// p50: rank 10 of 20 → exactly the top of the first bucket.
	if got := h.Quantile(0.5); !near(got, 10) {
		t.Fatalf("Quantile(0.5) = %g, want 10", got)
	}
	// p75: rank 15 → halfway through the second bucket: 10 + 10·(5/10) = 15.
	if got := h.Quantile(0.75); !near(got, 15) {
		t.Fatalf("Quantile(0.75) = %g, want 15", got)
	}
	// Clamping outside [0, 1].
	if got := h.Quantile(2); !near(got, 20) {
		t.Fatalf("Quantile(2) = %g, want clamp to Quantile(1) = 20", got)
	}
}

// TestQuantileNegativeBounds: a first bucket with a non-positive bound has
// no zero floor to interpolate toward — it returns its own bound.
func TestQuantileNegativeBounds(t *testing.T) {
	h := NewHistogram(-5, 5)
	h.Observe(-10)
	if got := h.Quantile(0.5); !near(got, -5) {
		t.Fatalf("Quantile(0.5) = %g, want -5", got)
	}
}

// TestPointQuantile: the snapshot form agrees with the live histogram, and
// scalar points yield 0.
func TestPointQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("wait", 10, 100, 1000)
	for _, v := range []float64{3, 30, 300, 3000} {
		h.Observe(v)
	}
	for _, p := range r.Snapshot() {
		switch p.Name {
		case "wait":
			for _, q := range []float64{0.25, 0.5, 0.95} {
				if got, want := p.Quantile(q), h.Quantile(q); !near(got, want) {
					t.Fatalf("Point.Quantile(%g) = %g, histogram says %g", q, got, want)
				}
			}
		}
	}
	g := Point{Name: "x", Kind: KindGauge, Value: 7}
	if got := g.Quantile(0.5); got != 0 {
		t.Fatalf("gauge Point.Quantile = %g, want 0", got)
	}
}
