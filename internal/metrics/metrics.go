// Package metrics implements the unified, typed metric registry the
// observability layer exports: counters, gauges, histograms, and derived
// (function-backed) gauges, all addressable by name from one place. The
// survey's Section VI centers this kind of measurement plane — the nine
// sites all archive power/energy figures at data-center, machine, and job
// granularity — and the experiment harness snapshots a registry instead of
// reaching into ad-hoc counter fields scattered across subsystems.
//
// Determinism contract: a Snapshot is sorted by metric name, values are
// plain Go numerics with no wall-clock or map-order dependence, and the
// JSON export writes fields in a fixed order — two runs with the same seed
// produce byte-identical exports.
//
// Concurrency: metric value types (Counter, Gauge, Histogram) are NOT
// internally synchronized — each simulation engine is single-goroutine by
// the runner's determinism contract, and adding atomics would tax the hot
// path for a guarantee nothing needs. The Registry itself locks only its
// name table, so concurrent managers may each own a private registry while
// a shared one is still safe to *register* into.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Kind discriminates the metric types in a snapshot.
type Kind int

const (
	// KindCounter is a monotonically increasing integer count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time float value (set, not accumulated).
	KindGauge
	// KindFunc is a derived gauge computed at snapshot time.
	KindFunc
	// KindHistogram is a bucketed distribution with sum and count.
	KindHistogram
)

var kindNames = [...]string{"counter", "gauge", "func", "histogram"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Counter is a monotonically increasing count. The zero value is unusable;
// create with NewCounter or Registry.Counter so subsystems can expose a
// counter before (or without) a registry adopting it.
type Counter struct {
	n int64
}

// NewCounter returns a standalone counter (registered later via
// Registry.Register, or never).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (negative deltas panic — counters are monotonic).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative counter delta")
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is a point-in-time value.
type Gauge struct {
	v float64
}

// NewGauge returns a standalone gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a bucketed distribution. Storage is per-bucket: counts[i]
// is the number of observations in (bounds[i-1], bounds[i]] and the last
// slot is the overflow bucket above the final bound. Cumulative returns
// the Prometheus-style running form ("observations <= bound"), which is
// what the JSON export's cum_counts field and the /metrics exposition
// carry — mean and quantile estimates are recoverable from the export
// without the raw series.
type Histogram struct {
	bounds []float64
	counts []int64 // len(bounds)+1; last = overflow
	sum    float64
	n      int64
}

// NewHistogram returns a histogram over the given ascending bucket bounds.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Buckets returns (bounds, counts) — counts has one extra overflow slot.
func (h *Histogram) Buckets() ([]float64, []int64) { return h.bounds, h.counts }

// Quantile estimates the q-th quantile (clamped to [0, 1]) of the observed
// distribution by linear interpolation within the cumulative bucket that
// contains rank q·Count, following the Prometheus histogram_quantile
// conventions: an empty histogram yields 0, a rank landing in the overflow
// (+Inf) bucket yields the highest finite bound, and the first bucket
// interpolates down to zero when its bound is positive (the bound itself
// otherwise — there is no lower anchor to interpolate toward).
func (h *Histogram) Quantile(q float64) float64 {
	return bucketQuantile(h.bounds, h.counts, h.n, q)
}

// bucketQuantile is the shared estimator behind Histogram.Quantile and
// Point.Quantile.
func bucketQuantile(bounds []float64, counts []int64, n int64, q float64) float64 {
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(bounds) {
			// Overflow bucket: no finite upper edge to interpolate within.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		switch {
		case i > 0:
			lo = bounds[i-1]
		case bounds[i] <= 0:
			lo = bounds[i]
		}
		return lo + (bounds[i]-lo)*(rank-prev)/float64(c)
	}
	// Unreachable with consistent counts (cum == n >= rank); keep the
	// overflow convention for defensiveness.
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// Cumulative returns the running bucket counts: out[i] is the number of
// observations <= bounds[i], and the final slot equals Count(). This is
// the form Prometheus exposition requires for _bucket series.
func (h *Histogram) Cumulative() []int64 {
	out := make([]int64, len(h.counts))
	cum := int64(0)
	for i, c := range h.counts {
		cum += c
		out[i] = cum
	}
	return out
}

// SyncHistogram is a histogram safe for concurrent observers — the
// exception to the package's unsynchronized-values rule, for the one
// place that genuinely needs it: the service tier's HTTP handlers,
// which observe request latencies from many goroutines at once.
// Snapshot deep-copies its buckets under the same mutex, so exports
// see a consistent point-in-time distribution.
type SyncHistogram struct {
	mu sync.Mutex
	h  *Histogram
}

// NewSyncHistogram returns a standalone synchronized histogram.
func NewSyncHistogram(bounds ...float64) *SyncHistogram {
	return &SyncHistogram{h: NewHistogram(bounds...)}
}

// Observe records one sample; safe from any goroutine.
func (s *SyncHistogram) Observe(v float64) {
	s.mu.Lock()
	s.h.Observe(v)
	s.mu.Unlock()
}

// Count returns the number of observations.
func (s *SyncHistogram) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.h.Count()
}

// snap copies the histogram's state into a Point under the lock.
func (s *SyncHistogram) snap(p *Point) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p.Value = s.h.Mean()
	bounds, counts := s.h.Buckets()
	p.Bounds = append([]float64(nil), bounds...)
	p.Counts = append([]int64(nil), counts...)
	p.Sum, p.Count = s.h.Sum(), s.h.Count()
}

// Point is one metric in a snapshot.
type Point struct {
	Name  string
	Kind  Kind
	Value float64 // counter count, gauge/func value, histogram mean
	// Histogram detail (nil for scalar kinds).
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Quantile estimates the q-th quantile from a histogram point's buckets
// (see Histogram.Quantile); scalar kinds yield 0. It lets snapshot
// consumers (the tsdb sampler, offline tooling) derive p50/p95/p99 series
// without reaching back into the live histogram.
func (p Point) Quantile(q float64) float64 {
	if p.Kind != KindHistogram {
		return 0
	}
	return bucketQuantile(p.Bounds, p.Counts, p.Count, q)
}

type entry struct {
	kind Kind
	c    *Counter
	g    *Gauge
	f    func() float64
	h    *Histogram
	sh   *SyncHistogram
}

// Registry is a named collection of metrics. Create with New.
type Registry struct {
	mu    sync.Mutex
	items map[string]entry
}

// New returns an empty registry.
func New() *Registry { return &Registry{items: map[string]entry{}} }

func (r *Registry) put(name string, e entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.items[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.items[name] = e
}

// Counter creates and registers a counter under name.
func (r *Registry) Counter(name string) *Counter {
	c := NewCounter()
	r.put(name, entry{kind: KindCounter, c: c})
	return c
}

// Gauge creates and registers a gauge under name.
func (r *Registry) Gauge(name string) *Gauge {
	g := NewGauge()
	r.put(name, entry{kind: KindGauge, g: g})
	return g
}

// Histogram creates and registers a histogram under name.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	h := NewHistogram(bounds...)
	r.put(name, entry{kind: KindHistogram, h: h})
	return h
}

// SyncHistogram creates and registers a concurrency-safe histogram
// under name. It exports exactly like Histogram; only its write path
// differs.
func (r *Registry) SyncHistogram(name string, bounds ...float64) *SyncHistogram {
	h := NewSyncHistogram(bounds...)
	r.put(name, entry{kind: KindHistogram, sh: h})
	return h
}

// GaugeFunc registers a derived gauge evaluated at snapshot time — the
// adoption path for values a subsystem already maintains (an integral, a
// struct field) that the registry should export without duplicating.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.put(name, entry{kind: KindFunc, f: fn})
}

// Register adopts an existing standalone Counter under name, so a
// subsystem built without a registry (power.Controller, fault.Injector)
// still exports through the unified surface once a manager owns it.
func (r *Registry) Register(name string, c *Counter) {
	r.put(name, entry{kind: KindCounter, c: c})
}

// Value returns the current scalar value of the named metric (histogram
// mean for histograms), or 0 if the name is unknown.
func (r *Registry) Value(name string) float64 {
	r.mu.Lock()
	e, ok := r.items[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	switch e.kind {
	case KindCounter:
		return float64(e.c.Value())
	case KindGauge:
		return e.g.Value()
	case KindFunc:
		return e.f()
	case KindHistogram:
		if e.sh != nil {
			e.sh.mu.Lock()
			defer e.sh.mu.Unlock()
			return e.sh.h.Mean()
		}
		return e.h.Mean()
	}
	return 0
}

// Snapshot returns every metric, sorted by name.
func (r *Registry) Snapshot() []Point {
	r.mu.Lock()
	names := make([]string, 0, len(r.items))
	for n := range r.items {
		names = append(names, n)
	}
	entries := make([]entry, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		entries = append(entries, r.items[n])
	}
	r.mu.Unlock()

	out := make([]Point, len(names))
	for i, n := range names {
		e := entries[i]
		p := Point{Name: n, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			p.Value = float64(e.c.Value())
		case KindGauge:
			p.Value = e.g.Value()
		case KindFunc:
			p.Value = e.f()
		case KindHistogram:
			if e.sh != nil {
				e.sh.snap(&p)
				break
			}
			p.Value = e.h.Mean()
			p.Bounds, p.Counts = e.h.Buckets()
			p.Sum, p.Count = e.h.Sum(), e.h.Count()
		}
		out[i] = p
	}
	return out
}

// WriteJSON writes the snapshot as a deterministic JSON object keyed by
// metric name: {"name": {"kind": "...", "value": N, ...}, ...} with keys
// in sorted order and fixed field order, so same-seed runs export
// byte-identical files.
func (r *Registry) WriteJSON(w io.Writer) error {
	pts := r.Snapshot()
	bw := newErrWriter(w)
	bw.str("{\n")
	for i, p := range pts {
		bw.str("  ")
		bw.str(strconv.Quote(p.Name))
		bw.str(`: {"kind": `)
		bw.str(strconv.Quote(p.Kind.String()))
		bw.str(`, "value": `)
		bw.num(p.Value)
		if p.Kind == KindHistogram {
			bw.str(`, "sum": `)
			bw.num(p.Sum)
			bw.str(`, "count": `)
			bw.str(strconv.FormatInt(p.Count, 10))
			bw.str(`, "bounds": [`)
			for k, b := range p.Bounds {
				if k > 0 {
					bw.str(", ")
				}
				bw.num(b)
			}
			bw.str(`], "counts": [`)
			for k, c := range p.Counts {
				if k > 0 {
					bw.str(", ")
				}
				bw.str(strconv.FormatInt(c, 10))
			}
			// Cumulative form alongside the raw buckets: consumers recover
			// the mean from sum/count and quantile estimates from
			// cum_counts without the raw series.
			bw.str(`], "cum_counts": [`)
			cum := int64(0)
			for k, c := range p.Counts {
				if k > 0 {
					bw.str(", ")
				}
				cum += c
				bw.str(strconv.FormatInt(cum, 10))
			}
			bw.str("]")
		}
		bw.str("}")
		if i < len(pts)-1 {
			bw.str(",")
		}
		bw.str("\n")
	}
	bw.str("}\n")
	return bw.err
}

// errWriter threads one error through a write sequence.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (e *errWriter) str(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *errWriter) num(v float64) {
	// %g would print large integers in e-notation; prefer the shortest
	// round-trippable decimal form JSON consumers expect.
	e.str(strconv.FormatFloat(v, 'g', -1, 64))
}
