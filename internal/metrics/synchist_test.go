package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestSyncHistogramConcurrentObserve(t *testing.T) {
	reg := New()
	h := reg.SyncHistogram("http.latency_ms.get.runs", 1, 10, 100)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				h.Observe(float64(g))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != 2000 {
		t.Fatalf("Count = %d, want 2000", got)
	}
	// Mean of 250 each of 0..7 is 3.5, reachable through Value too.
	if got := reg.Value("http.latency_ms.get.runs"); got != 3.5 {
		t.Fatalf("Value = %v, want 3.5", got)
	}
}

func TestSyncHistogramSnapshotIsDeepCopy(t *testing.T) {
	reg := New()
	h := reg.SyncHistogram("lat", 1, 10)
	h.Observe(5)
	pts := reg.Snapshot()
	if len(pts) != 1 || pts[0].Count != 1 {
		t.Fatalf("snapshot = %+v, want one point with one observation", pts)
	}
	// Mutating the snapshot must not reach the live histogram.
	pts[0].Counts[0] = 99
	if pts2 := reg.Snapshot(); pts2[0].Counts[0] == 99 {
		t.Fatal("snapshot shares bucket storage with the live histogram")
	}
}

// TestWritePrometheusSanitizesEndpointNames covers the service's
// verb × endpoint histogram names: dots become underscores and the
// full histogram series appears.
func TestWritePrometheusSanitizesEndpointNames(t *testing.T) {
	reg := New()
	h := reg.SyncHistogram("http.latency_ms.post.runs", 1, 10, 100)
	h.Observe(3)
	h.Observe(42)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE http_latency_ms_post_runs histogram",
		`http_latency_ms_post_runs_bucket{le="10"} 1`,
		`http_latency_ms_post_runs_bucket{le="+Inf"} 2`,
		"http_latency_ms_post_runs_sum 45",
		"http_latency_ms_post_runs_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "latency_ms.") {
		t.Fatalf("unsanitized dot survived:\n%s", out)
	}
}

// TestZeroObservationHistogramRoundTrip pins the contract the phase
// profiler relies on: a registered-but-never-observed histogram (or a
// zero-valued prof gauge) still appears in the exposition and survives
// the parse round trip with explicit zeros.
func TestZeroObservationHistogramRoundTrip(t *testing.T) {
	reg := New()
	reg.SyncHistogram("journal.fsync_ms", 1, 10)
	reg.GaugeFunc("prof.pump.seconds", func() float64 { return 0 })
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples, err := ParsePrometheusText(&buf)
	if err != nil {
		t.Fatalf("ParsePrometheusText: %v", err)
	}
	for _, key := range []string{
		`journal_fsync_ms_bucket{le="1"}`,
		`journal_fsync_ms_bucket{le="+Inf"}`,
		"journal_fsync_ms_sum",
		"journal_fsync_ms_count",
		"prof_pump_seconds",
	} {
		v, ok := samples[key]
		if !ok {
			t.Fatalf("round trip lost %q; samples: %v", key, SampleNames(samples))
		}
		if v != 0 {
			t.Fatalf("%s = %v, want explicit 0", key, v)
		}
	}
}
