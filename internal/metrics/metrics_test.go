package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("jobs.done")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("power.cap_w")
	g.Set(2500)
	g.Add(-500)
	if got := g.Value(); got != 2000 {
		t.Fatalf("gauge = %g, want 2000", got)
	}

	h := r.Histogram("wait.s", 10, 100, 1000)
	for _, v := range []float64{5, 10, 50, 5000} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 5065 {
		t.Fatalf("hist count/sum = %d/%g, want 4/5065", h.Count(), h.Sum())
	}
	_, counts := h.Buckets()
	want := []int64{2, 1, 0, 1} // <=10: 5,10; <=100: 50; <=1000: none; overflow: 5000
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}
	if m := h.Mean(); m != 5065.0/4 {
		t.Fatalf("mean = %g", m)
	}
}

func TestRegisterAdoptsStandaloneCounter(t *testing.T) {
	c := NewCounter()
	c.Add(7)
	r := New()
	r.Register("fault.crashes", c)
	c.Inc()
	if got := r.Value("fault.crashes"); got != 8 {
		t.Fatalf("adopted counter = %g, want 8", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := New()
	x := 1.5
	r.GaugeFunc("derived", func() float64 { return x * 2 })
	if got := r.Value("derived"); got != 3 {
		t.Fatalf("func gauge = %g, want 3", got)
	}
	x = 4
	if got := r.Value("derived"); got != 8 {
		t.Fatalf("func gauge = %g, want 8 after update", got)
	}
}

func TestSnapshotSortedAndJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("z.last").Add(3)
		r.Gauge("a.first").Set(1.25)
		h := r.Histogram("m.middle", 1, 2)
		h.Observe(0.5)
		h.Observe(3)
		r.GaugeFunc("b.func", func() float64 { return 42 })
		return r
	}
	r := build()
	snap := r.Snapshot()
	names := []string{"a.first", "b.func", "m.middle", "z.last"}
	if len(snap) != len(names) {
		t.Fatalf("snapshot has %d points, want %d", len(snap), len(names))
	}
	for i, n := range names {
		if snap[i].Name != n {
			t.Fatalf("snapshot[%d] = %q, want %q", i, snap[i].Name, n)
		}
	}

	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("two identical registries exported different bytes:\n%s\n---\n%s", b1.String(), b2.String())
	}
	var parsed map[string]map[string]any
	if err := json.Unmarshal(b1.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b1.String())
	}
	if parsed["z.last"]["value"].(float64) != 3 {
		t.Fatalf("z.last = %v", parsed["z.last"])
	}
	if parsed["m.middle"]["count"].(float64) != 2 {
		t.Fatalf("m.middle = %v", parsed["m.middle"])
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := New()
	r.Counter("x")
	r.Counter("x")
}

func TestUnknownValueIsZero(t *testing.T) {
	if got := New().Value("nope"); got != 0 {
		t.Fatalf("unknown metric = %g, want 0", got)
	}
}
