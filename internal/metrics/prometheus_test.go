package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"jobs.completed":      "jobs_completed",
		"power.total_energy":  "power_total_energy",
		"ops:scrapes":         "ops:scrapes",
		"9lives":              "_9lives",
		"":                    "_",
		"a-b c/d":             "a_b_c_d",
		"already_fine_name_1": "already_fine_name_1",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// buildSample constructs the same registry state twice so golden and
// determinism checks share one fixture.
func buildSample() *Registry {
	r := New()
	r.Counter("jobs.done").Add(5)
	r.Gauge("power.cap_w").Set(2500.5)
	r.GaugeFunc("derived.value", func() float64 { return 42 })
	h := r.Histogram("wait.s", 10, 100, 1000)
	for _, v := range []float64{5, 10, 50, 5000} {
		h.Observe(v)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var b bytes.Buffer
	if err := buildSample().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE derived_value gauge",
		"derived_value 42",
		"# TYPE jobs_done counter",
		"jobs_done 5",
		"# TYPE power_cap_w gauge",
		"power_cap_w 2500.5",
		"# TYPE wait_s histogram",
		`wait_s_bucket{le="10"} 2`,
		`wait_s_bucket{le="100"} 3`,
		`wait_s_bucket{le="1000"} 3`,
		`wait_s_bucket{le="+Inf"} 4`,
		"wait_s_sum 5065",
		"wait_s_count 4",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Fatalf("prometheus exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusRoundTrip is the scrape contract: everything WritePrometheus
// emits parses back, and every parsed value matches the registry snapshot
// value-for-value (cumulative buckets included).
func TestPrometheusRoundTrip(t *testing.T) {
	r := buildSample()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParsePrometheusText(&b)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, p := range r.Snapshot() {
		name := SanitizeName(p.Name)
		switch p.Kind {
		case KindHistogram:
			cum := int64(0)
			for i, bound := range p.Bounds {
				cum += p.Counts[i]
				key := name + `_bucket{le="` + trimFloat(bound) + `"}`
				if got := samples[key]; got != float64(cum) {
					t.Errorf("%s = %g, want %d", key, got, cum)
				}
				seen++
			}
			if got := samples[name+`_bucket{le="+Inf"}`]; got != float64(p.Count) {
				t.Errorf("%s +Inf bucket = %g, want %d", name, got, p.Count)
			}
			if got := samples[name+"_sum"]; got != p.Sum {
				t.Errorf("%s_sum = %g, want %g", name, got, p.Sum)
			}
			if got := samples[name+"_count"]; got != float64(p.Count) {
				t.Errorf("%s_count = %g, want %d", name, got, p.Count)
			}
			seen += 3
		default:
			if got, ok := samples[name]; !ok || got != p.Value {
				t.Errorf("%s = %g (present=%v), want %g", name, got, ok, p.Value)
			}
			seen++
		}
	}
	if seen != len(samples) {
		t.Fatalf("parsed %d samples, matched %d against the snapshot", len(samples), seen)
	}
}

func trimFloat(v float64) string {
	var b bytes.Buffer
	(&errWriter{w: &b}).num(v)
	return b.String()
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram(1, 2, 3)
	for _, v := range []float64{0.5, 1.5, 1.7, 2.5, 9} {
		h.Observe(v)
	}
	got := h.Cumulative()
	want := []int64{1, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", got, want)
		}
	}
	if got[len(got)-1] != h.Count() {
		t.Fatalf("last cumulative %d != count %d", got[len(got)-1], h.Count())
	}
}

// TestWriteJSONCumulativeCounts pins the export shape the satellite fix
// added: cum_counts rides alongside counts, sum, and count.
func TestWriteJSONCumulativeCounts(t *testing.T) {
	var b bytes.Buffer
	if err := buildSample().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"cum_counts": [2, 3, 3, 4]`) {
		t.Fatalf("JSON export missing cumulative buckets:\n%s", out)
	}
	if !strings.Contains(out, `"sum": 5065`) || !strings.Contains(out, `"count": 4`) {
		t.Fatalf("JSON export missing sum/count:\n%s", out)
	}
}

// TestPrometheusRoundTripEdges covers the exposition corners the main
// round-trip fixture misses: an empty registry, a histogram nobody has
// observed, and names that only become valid after sanitization.
func TestPrometheusRoundTripEdges(t *testing.T) {
	t.Run("empty registry", func(t *testing.T) {
		var b bytes.Buffer
		if err := New().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if b.Len() != 0 {
			t.Fatalf("empty registry rendered %q, want nothing", b.String())
		}
		samples, err := ParsePrometheusText(&b)
		if err != nil {
			t.Fatal(err)
		}
		if len(samples) != 0 {
			t.Fatalf("parsed %d samples from an empty exposition", len(samples))
		}
	})

	t.Run("zero-observation histogram", func(t *testing.T) {
		r := New()
		r.Histogram("wait.s", 10, 100)
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		samples, err := ParsePrometheusText(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatalf("zero-observation histogram does not parse:\n%s\n%v", b.String(), err)
		}
		// Every series must exist with value 0 — a scraper that sees the
		// metric disappear between scrapes misreads it as a reset.
		for _, key := range []string{
			`wait_s_bucket{le="10"}`, `wait_s_bucket{le="100"}`,
			`wait_s_bucket{le="+Inf"}`, "wait_s_sum", "wait_s_count",
		} {
			got, ok := samples[key]
			if !ok {
				t.Fatalf("%s missing from zero-observation exposition:\n%s", key, b.String())
			}
			if got != 0 {
				t.Fatalf("%s = %g, want 0", key, got)
			}
		}
	})

	t.Run("sanitized names", func(t *testing.T) {
		r := New()
		r.Counter("9ops.weird-name/v2").Add(3)
		r.Gauge("power cap (w)").Set(7)
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		samples, err := ParsePrometheusText(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got := samples["_9ops_weird_name_v2"]; got != 3 {
			t.Fatalf("_9ops_weird_name_v2 = %g, want 3 (samples: %v)", got, SampleNames(samples))
		}
		if got := samples["power_cap__w_"]; got != 7 {
			t.Fatalf("power_cap__w_ = %g, want 7 (samples: %v)", got, SampleNames(samples))
		}
		// The raw names must not leak into the exposition.
		if s := b.String(); strings.Contains(s, "9ops.weird") || strings.Contains(s, "power cap") {
			t.Fatalf("unsanitized name leaked into exposition:\n%s", s)
		}
	})

	t.Run("parse failures", func(t *testing.T) {
		for _, bad := range []string{"lonely_name", "x notanumber", "dup 1\ndup 2"} {
			if _, err := ParsePrometheusText(strings.NewReader(bad)); err == nil {
				t.Errorf("ParsePrometheusText(%q) succeeded, want error", bad)
			}
		}
	})
}
