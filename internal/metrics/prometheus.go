package metrics

// Prometheus text exposition (format version 0.0.4) for the registry, so a
// live run can be scraped by any standard collector — the serving side of
// the survey's monitoring centerpiece. The mapping is the canonical one:
//
//   - Counter        -> `# TYPE name counter` and one sample line
//   - Gauge / Func   -> `# TYPE name gauge`
//   - Histogram      -> `# TYPE name histogram` with cumulative
//     `name_bucket{le="..."}` lines (closed by le="+Inf"), `name_sum`,
//     and `name_count`
//
// Metric names in this repository use dots ("jobs.completed"); Prometheus
// names admit only [a-zA-Z0-9_:], so SanitizeName rewrites every exported
// name and every scrape sees "jobs_completed". Exposition order follows
// the snapshot (name-sorted), so the output is deterministic for a fixed
// registry state.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SanitizeName rewrites a registry metric name into a valid Prometheus
// metric name: runes outside [a-zA-Z0-9_:] become '_', and a leading
// digit gains a '_' prefix. An empty name becomes "_".
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// promKind maps a metric kind onto its exposition TYPE keyword.
func promKind(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// WritePrometheus writes the registry's current state in Prometheus text
// exposition format. The output is deterministic for a fixed registry
// state: metrics appear in snapshot (name-sorted) order with fixed
// formatting.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Snapshot())
}

// WritePrometheus writes an already-taken snapshot in Prometheus text
// exposition format (see Registry.WritePrometheus).
func WritePrometheus(w io.Writer, pts []Point) error {
	bw := newErrWriter(w)
	for _, p := range pts {
		name := SanitizeName(p.Name)
		bw.str("# TYPE ")
		bw.str(name)
		bw.str(" ")
		bw.str(promKind(p.Kind))
		bw.str("\n")
		switch p.Kind {
		case KindHistogram:
			cum := int64(0)
			for i, b := range p.Bounds {
				cum += p.Counts[i]
				bw.str(name)
				bw.str(`_bucket{le="`)
				bw.num(b)
				bw.str(`"} `)
				bw.str(strconv.FormatInt(cum, 10))
				bw.str("\n")
			}
			bw.str(name)
			bw.str(`_bucket{le="+Inf"} `)
			bw.str(strconv.FormatInt(p.Count, 10))
			bw.str("\n")
			bw.str(name)
			bw.str("_sum ")
			bw.num(p.Sum)
			bw.str("\n")
			bw.str(name)
			bw.str("_count ")
			bw.str(strconv.FormatInt(p.Count, 10))
			bw.str("\n")
		default:
			bw.str(name)
			bw.str(" ")
			bw.num(p.Value)
			bw.str("\n")
		}
	}
	return bw.err
}

// ParsePrometheusText parses text in the exposition format WritePrometheus
// emits back into a flat sample map: scalar metrics under their name,
// histogram series under "name_bucket{le=\"...\"}", "name_sum", and
// "name_count". Comment (#) and blank lines are skipped. It exists for the
// scrape round-trip tests and offline tooling, and handles the subset of
// the format this package writes (no HELP parsing, single label).
func ParsePrometheusText(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The sample name may carry a {label="value"} block that itself
		// contains no spaces (true for everything this package writes), so
		// the value is always the field after the last space.
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("metrics: line %d: no value in %q", lineNo, line)
		}
		key := strings.TrimSpace(line[:cut])
		v, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: bad value in %q: %v", lineNo, line, err)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("metrics: line %d: duplicate sample %q", lineNo, key)
		}
		out[key] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SampleNames returns the keys of a parsed sample map in sorted order, for
// deterministic iteration in tests and tools.
func SampleNames(samples map[string]float64) []string {
	names := make([]string, 0, len(samples))
	for n := range samples {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
