// Package stats implements the small statistical toolkit the experiments
// need: exact percentiles over collected samples, online mean/variance, and
// fixed-width histograms. The survey's question Q3(e) asks sites for
// min/median/max and the 10th/25th/75th/90th percentiles of job size and
// wallclock time, so those quantiles get first-class treatment.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates float64 observations for exact quantile queries.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddInt appends an integer observation.
func (s *Sample) AddInt(x int) { s.Add(float64(x)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 {
	t := 0.0
	for _, x := range s.xs {
		t += x
	}
	return t
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.xs))
}

// Stddev returns the sample standard deviation, or 0 with < 2 observations.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between closest ranks. An empty sample yields 0.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min()
	}
	if q >= 1 {
		return s.Max()
	}
	s.sort()
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 0.5 quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// SurveyQuantiles holds the exact statistics question Q3(e) of the survey
// asks each center to report.
type SurveyQuantiles struct {
	Min, P10, P25, Median, P75, P90, Max float64
}

// Q3e computes the survey's requested quantile set.
func (s *Sample) Q3e() SurveyQuantiles {
	return SurveyQuantiles{
		Min:    s.Min(),
		P10:    s.Quantile(0.10),
		P25:    s.Quantile(0.25),
		Median: s.Median(),
		P75:    s.Quantile(0.75),
		P90:    s.Quantile(0.90),
		Max:    s.Max(),
	}
}

func (q SurveyQuantiles) String() string {
	return fmt.Sprintf("min=%.1f p10=%.1f p25=%.1f med=%.1f p75=%.1f p90=%.1f max=%.1f",
		q.Min, q.P10, q.P25, q.Median, q.P75, q.P90, q.Max)
}

// Online tracks mean and variance incrementally (Welford) without retaining
// samples; used for long-running power telemetry.
type Online struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates an observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the observation count.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean.
func (o *Online) Mean() float64 { return o.mean }

// Min returns the smallest observation seen.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation seen.
func (o *Online) Max() float64 { return o.max }

// Variance returns the running sample variance.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Stddev returns the running sample standard deviation.
func (o *Online) Stddev() float64 { return math.Sqrt(o.Variance()) }

// Histogram is a fixed-width histogram over [Lo, Hi) with out-of-range
// observations clamped into the edge buckets.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int64
	total   int64
}

// NewHistogram builds a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Buckets)
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(n))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Buckets[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// BucketMid returns the midpoint value of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	return h.Lo + w*(float64(i)+0.5)
}

// Mode returns the midpoint of the most populated bucket.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.Buckets {
		if c > h.Buckets[best] {
			best = i
		}
	}
	return h.BucketMid(best)
}

// JainIndex returns Jain's fairness index over the allocations xs:
// (sum x)^2 / (n * sum x^2), which is 1 for perfectly equal shares and
// 1/n when one party gets everything. Used to score the fairshare
// scheduling goal (survey Q3(d)).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// MAPE returns the mean absolute percentage error between predictions and
// actuals, skipping pairs whose actual value is zero. It returns 0 when no
// valid pairs exist. Used to score the power predictors (E8).
func MAPE(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("stats: MAPE length mismatch")
	}
	sum, n := 0.0, 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
