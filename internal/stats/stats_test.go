package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{5, 1, 3, 2, 4} {
		s.Add(x)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %f/%f", s.Min(), s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %f", s.Mean())
	}
	if s.Median() != 3 {
		t.Fatalf("median = %f", s.Median())
	}
	if math.Abs(s.Stddev()-math.Sqrt(2.5)) > 1e-9 {
		t.Fatalf("stddev = %f", s.Stddev())
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	var s Sample
	for i := 1; i <= 4; i++ {
		s.AddInt(i) // 1 2 3 4
	}
	if got := s.Quantile(0.5); got != 2.5 {
		t.Fatalf("median of 1..4 = %f, want 2.5", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %f", got)
	}
	if got := s.Quantile(1); got != 4 {
		t.Fatalf("q1 = %f", got)
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileWithinBounds(t *testing.T) {
	f := func(xs []float64, qRaw uint8) bool {
		if len(xs) == 0 {
			return true
		}
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			s.Add(x)
		}
		q := float64(qRaw) / 255
		v := s.Quantile(q)
		return v >= s.Min()-1e-9 && v <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQ3eOrdering(t *testing.T) {
	var s Sample
	for i := 0; i < 1000; i++ {
		s.Add(float64(i * i % 977))
	}
	q := s.Q3e()
	vals := []float64{q.Min, q.P10, q.P25, q.Median, q.P75, q.P90, q.Max}
	if !sort.Float64sAreSorted(vals) {
		t.Fatalf("Q3e quantiles not ordered: %+v", q)
	}
}

func TestOnlineMatchesSample(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		var s Sample
		var o Online
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e8 {
				return true
			}
			s.Add(x)
			o.Add(x)
		}
		if math.Abs(s.Mean()-o.Mean()) > 1e-6*(1+math.Abs(s.Mean())) {
			return false
		}
		if math.Abs(s.Stddev()-o.Stddev()) > 1e-5*(1+s.Stddev()) {
			return false
		}
		return o.Min() == s.Min() && o.Max() == s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	for i, c := range h.Buckets {
		if c != 10 {
			t.Fatalf("bucket %d count = %d, want 10", i, c)
		}
	}
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(1000)
	if h.Buckets[0] != 1 || h.Buckets[4] != 1 {
		t.Fatalf("edge buckets = %v", h.Buckets)
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 5; i++ {
		h.Add(7.2)
	}
	h.Add(1.1)
	if got := h.Mode(); got != 7.5 {
		t.Fatalf("mode = %f, want 7.5 (mid of bucket 7)", got)
	}
}

func TestMAPE(t *testing.T) {
	pred := []float64{110, 90, 100}
	actual := []float64{100, 100, 100}
	if got := MAPE(pred, actual); math.Abs(got-0.2/3) > 1e-12 {
		t.Fatalf("MAPE = %f", got)
	}
}

func TestMAPESkipsZeroActuals(t *testing.T) {
	if got := MAPE([]float64{5, 110}, []float64{0, 100}); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE with zero actual = %f, want 0.1", got)
	}
	if got := MAPE([]float64{5}, []float64{0}); got != 0 {
		t.Fatalf("MAPE with only zero actuals = %f, want 0", got)
	}
}

func TestMAPEPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); got != 1 {
		t.Fatalf("equal shares index = %f", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); got != 0.25 {
		t.Fatalf("monopoly index = %f, want 1/n", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Fatalf("empty index = %f", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Fatalf("all-zero index = %f", got)
	}
	// More equal is higher.
	if JainIndex([]float64{3, 1}) <= JainIndex([]float64{4, 0.1}) {
		t.Fatal("index ordering wrong")
	}
}
