package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"epajsrm/internal/simulator"
)

func sampleTracer() *Tracer {
	tr := New()
	tr.SetThreadName(17, "job 17")
	tr.Span(PidJobs, 17, "run", 100, 350,
		Arg{"energy_j", 1234.5}, Arg{"nodes", 4}, Arg{"reason", "completed"})
	tr.Span(PidJobs, 17, "queue-wait", 10, 100)
	tr.Instant(PidSched, 0, "backfill", 100, Arg{"job", int64(17)}, Arg{"ok", true})
	tr.Counter(PidPower, "it_power_w", 120, 2500.25)
	tr.Instant(PidFault, 0, "node-crash", 300, Arg{"node", 3})
	return tr
}

func TestChromeExportParsesAndIsOrdered(t *testing.T) {
	var b bytes.Buffer
	if err := sampleTracer().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, b.String())
	}
	// 5 process_name + 1 thread_name metadata records, then 5 events.
	if len(doc.TraceEvents) != 11 {
		t.Fatalf("got %d records, want 11:\n%s", len(doc.TraceEvents), b.String())
	}
	var lastTs float64 = -1
	sawSpan, sawCounter := false, false
	for _, ev := range doc.TraceEvents {
		ph := ev["ph"].(string)
		if ph == "M" {
			continue
		}
		ts := ev["ts"].(float64)
		if ts < lastTs {
			t.Fatalf("events out of ts order: %v after %v", ts, lastTs)
		}
		lastTs = ts
		switch ph {
		case "X":
			sawSpan = true
			if ev["name"] == "run" {
				if ev["dur"].(float64) != 250 {
					t.Fatalf("run span dur = %v, want 250", ev["dur"])
				}
				args := ev["args"].(map[string]any)
				if args["energy_j"].(float64) != 1234.5 || args["reason"] != "completed" {
					t.Fatalf("run span args = %v", args)
				}
			}
		case "C":
			sawCounter = true
			if v := ev["args"].(map[string]any)["value"].(float64); v != 2500.25 {
				t.Fatalf("counter value = %v", v)
			}
		}
	}
	if !sawSpan || !sawCounter {
		t.Fatalf("missing span (%v) or counter (%v) in export", sawSpan, sawCounter)
	}
}

func TestJSONLOneValidObjectPerLine(t *testing.T) {
	var b bytes.Buffer
	if err := sampleTracer().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), b.String())
	}
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, ln)
		}
	}
}

func TestExportByteDeterministic(t *testing.T) {
	var b1, b2 bytes.Buffer
	if err := sampleTracer().WriteChrome(&b1); err != nil {
		t.Fatal(err)
	}
	if err := sampleTracer().WriteChrome(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two identical tracers exported different chrome bytes")
	}
}

func TestNegativeSpanClampedToZero(t *testing.T) {
	tr := New()
	tr.Span(PidJobs, 1, "odd", 50, 40)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Dur != 0 {
		t.Fatalf("events = %+v, want single zero-dur span", evs)
	}
}

func TestStableOrderForSameTimestamp(t *testing.T) {
	// Spans emitted out of start order must still export sorted by ts,
	// and ties break by pid/tid/name — never by emission order across
	// different tracks.
	tr := New()
	tr.Instant(PidFault, 0, "b", 100)
	tr.Instant(PidSched, 0, "a", 100)
	tr.Span(PidJobs, 2, "early", 5, 20)
	evs := tr.Events()
	if evs[0].Name != "early" || evs[1].Name != "a" || evs[2].Name != "b" {
		t.Fatalf("order = %q %q %q", evs[0].Name, evs[1].Name, evs[2].Name)
	}
}

func TestVirtualTimestampsOnly(t *testing.T) {
	// The tracer's timestamps are simulator.Time passed by the caller;
	// exporting twice from tracers built identically must agree even if
	// wall time has advanced between builds (no time.Now anywhere).
	tr := New()
	at := simulator.Time(42)
	tr.Instant(PidSched, 0, "tick", at)
	evs := tr.Events()
	if evs[0].Ts != at {
		t.Fatalf("ts = %v, want %v", evs[0].Ts, at)
	}
}
