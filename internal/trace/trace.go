// Package trace implements a deterministic structured-event tracer for the
// simulation control loop: spans (job lifecycle stints, checkpoint I/O,
// cap actuations), instants (scheduler decisions, fault injections,
// staleness-guard trips), and counter samples (telemetry power readings),
// all stamped with virtual simulation time only — never the wall clock —
// so two same-seed runs emit byte-identical trace files.
//
// The tracer exports two formats:
//
//   - Chrome trace_event JSON (WriteChrome), loadable in Perfetto or
//     chrome://tracing. Virtual seconds map 1:1 onto trace microseconds,
//     so a 7-day run renders as a ~605-second timeline.
//   - JSONL (WriteJSONL), one event object per line, for jq/awk pipelines.
//
// Zero-cost-when-disabled contract: callers hold a nil *Tracer when
// tracing is off and guard every emission with a single nil-check
// (`if m.Tr != nil { ... }`). No Tracer method is safe on a nil receiver
// by design — the nil-check at the call site is the disable mechanism,
// and keeping it explicit keeps the hot path honest about its cost.
package trace

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"epajsrm/internal/simulator"
)

// Well-known track (Chrome "process") IDs. Fixed small integers keep the
// Perfetto layout stable across runs and sites.
const (
	PidJobs   = 1 // job lifecycle spans, one thread per job
	PidSched  = 2 // scheduler decision instants
	PidPower  = 3 // telemetry counters, cap actuation, staleness guard
	PidFault  = 4 // fault injection instants
	PidAlerts = 5 // SLO watchdog firings/resolutions, one thread per rule
)

// Arg is one ordered key/value pair attached to an event. A slice of Args
// (not a map) keeps export order deterministic.
type Arg struct {
	Key string
	Val any // string, int64-compatible integer, float64, or bool
}

// phase tags mirror the Chrome trace_event "ph" field.
const (
	phSpan    = "X"
	phInstant = "i"
	phCounter = "C"
)

// Event is one recorded trace event.
type Event struct {
	Ph   string // "X" span, "i" instant, "C" counter
	Pid  int
	Tid  int
	Name string
	Ts   simulator.Time // virtual start time
	Dur  simulator.Time // span length ("X" only)
	Args []Arg
}

// Tracer buffers events for export at end of run. Create with New; a nil
// *Tracer means tracing is disabled and must be guarded at call sites.
//
// The mutex exists for the parallel experiment harness, where replicas on
// worker goroutines may share one tracer; within a single engine all
// emission is single-goroutine.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	procs  map[int]string // pid -> process_name metadata
	tids   map[int]string // (pid<<32|tid) is overkill; jobs own PidJobs tids

	// Live subscribers (the ops server's /events stream). Publication is a
	// non-blocking channel send under mu: a slow or absent consumer can
	// never stall an emission site, so attaching a subscriber cannot
	// perturb the simulation — overflowing events are counted in dropped
	// instead of delivered. With no subscribers the cost is a nil-slice
	// range, which is free.
	subs    []*subscriber
	dropped atomic.Int64
}

type subscriber struct {
	ch chan Event
}

// New returns an enabled tracer with named default tracks.
func New() *Tracer {
	t := &Tracer{procs: map[int]string{}, tids: map[int]string{}}
	t.SetProcessName(PidJobs, "jobs")
	t.SetProcessName(PidSched, "scheduler")
	t.SetProcessName(PidPower, "power")
	t.SetProcessName(PidFault, "faults")
	t.SetProcessName(PidAlerts, "alerts")
	return t
}

// SetProcessName names a Chrome "process" track.
func (t *Tracer) SetProcessName(pid int, name string) {
	t.mu.Lock()
	t.procs[pid] = name
	t.mu.Unlock()
}

// SetThreadName names a thread within PidJobs (e.g. "job 17 (lrz)").
func (t *Tracer) SetThreadName(tid int, name string) {
	t.mu.Lock()
	t.tids[tid] = name
	t.mu.Unlock()
}

// Span records a complete span [start, end] on (pid, tid).
func (t *Tracer) Span(pid, tid int, name string, start, end simulator.Time, args ...Arg) {
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	t.emit(Event{Ph: phSpan, Pid: pid, Tid: tid, Name: name, Ts: start, Dur: dur, Args: args})
}

// Instant records a zero-duration event at ts.
func (t *Tracer) Instant(pid, tid int, name string, ts simulator.Time, args ...Arg) {
	t.emit(Event{Ph: phInstant, Pid: pid, Tid: tid, Name: name, Ts: ts, Args: args})
}

// Counter records a sampled counter value (rendered as a filled track).
func (t *Tracer) Counter(pid int, name string, ts simulator.Time, value float64) {
	t.emit(Event{Ph: phCounter, Pid: pid, Name: name, Ts: ts,
		Args: []Arg{{Key: "value", Val: value}}})
}

func (t *Tracer) emit(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	for _, s := range t.subs {
		select {
		case s.ch <- e:
		default:
			t.dropped.Add(1)
		}
	}
	t.mu.Unlock()
}

// Subscribe returns a live channel that receives every event emitted after
// the call, in emission order, plus a cancel function that detaches the
// subscription and closes the channel. The channel is bounded (buf <= 0
// selects a default of 1024): if the consumer falls behind, overflowing
// events are dropped — never blocked on — and counted in Dropped. Cancel
// is idempotent.
func (t *Tracer) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = 1024
	}
	s := &subscriber{ch: make(chan Event, buf)}
	t.mu.Lock()
	t.subs = append(t.subs, s)
	t.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			t.mu.Lock()
			for i, x := range t.subs {
				if x == s {
					t.subs = append(t.subs[:i], t.subs[i+1:]...)
					break
				}
			}
			t.mu.Unlock()
			// Safe: emit sends only to subscribers present in subs under
			// mu, so after removal no send can race this close.
			close(s.ch)
		})
	}
	return s.ch, cancel
}

// Dropped reports how many events overflowed subscriber buffers since the
// tracer was created (across all subscribers). Exported through the ops
// registry as ops.events_dropped.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the buffered events in stable export order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.sortLocked(out)
	return out
}

// sortLocked orders events for export: by timestamp, then track, then
// name, then emission order (slice order is already emission order and
// SliceStable preserves it). Emission order alone is deterministic within
// one engine, but the explicit sort keeps exports stable even if spans
// are emitted at completion time out of start order.
func (t *Tracer) sortLocked(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		return a.Name < b.Name
	})
}

// WriteChrome writes the buffer as Chrome trace_event JSON (the object
// form with a traceEvents array). Virtual seconds become microseconds.
func (t *Tracer) WriteChrome(w io.Writer) error {
	evs := t.Events()
	bw := &errWriter{w: w}
	bw.str("{\"traceEvents\": [\n")
	first := true
	// Metadata first: process and thread names, sorted for determinism.
	for _, pid := range sortedKeys(t.procs) {
		writeMetaEvent(bw, &first, "process_name", pid, 0, t.procs[pid])
	}
	for _, tid := range sortedKeys(t.tids) {
		writeMetaEvent(bw, &first, "thread_name", PidJobs, tid, t.tids[tid])
	}
	for i := range evs {
		if !first {
			bw.str(",\n")
		}
		first = false
		writeChromeEvent(bw, &evs[i])
	}
	bw.str("\n]}\n")
	return bw.err
}

// WriteJSONL writes one JSON object per event, one per line, in the same
// stable order as WriteChrome (without the metadata records).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	evs := t.Events()
	bw := &errWriter{w: w}
	for i := range evs {
		writeChromeEvent(bw, &evs[i])
		bw.str("\n")
	}
	return bw.err
}

// WriteEvent writes one event as the same single-line JSON object the
// JSONL export uses. The ops server's /events SSE stream shares this
// renderer, so the live and file forms of an event are identical and the
// trace reader parses both.
func WriteEvent(w io.Writer, e *Event) error {
	bw := &errWriter{w: w}
	writeChromeEvent(bw, e)
	return bw.err
}

func sortedKeys(m map[int]string) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

func writeMetaEvent(bw *errWriter, first *bool, kind string, pid, tid int, name string) {
	if !*first {
		bw.str(",\n")
	}
	*first = false
	bw.str(`{"ph": "M", "pid": `)
	bw.int(int64(pid))
	bw.str(`, "tid": `)
	bw.int(int64(tid))
	bw.str(`, "name": "`)
	bw.str(kind)
	bw.str(`", "args": {"name": `)
	bw.str(strconv.Quote(name))
	bw.str(`}}`)
}

func writeChromeEvent(bw *errWriter, e *Event) {
	bw.str(`{"ph": "`)
	bw.str(e.Ph)
	bw.str(`", "pid": `)
	bw.int(int64(e.Pid))
	if e.Ph != phCounter {
		bw.str(`, "tid": `)
		bw.int(int64(e.Tid))
	}
	bw.str(`, "name": `)
	bw.str(strconv.Quote(e.Name))
	bw.str(`, "ts": `)
	bw.int(int64(e.Ts))
	if e.Ph == phSpan {
		bw.str(`, "dur": `)
		bw.int(int64(e.Dur))
	}
	if len(e.Args) > 0 {
		bw.str(`, "args": {`)
		for i, a := range e.Args {
			if i > 0 {
				bw.str(", ")
			}
			bw.str(strconv.Quote(a.Key))
			bw.str(": ")
			writeVal(bw, a.Val)
		}
		bw.str("}")
	}
	bw.str("}")
}

func writeVal(bw *errWriter, v any) {
	switch x := v.(type) {
	case string:
		bw.str(strconv.Quote(x))
	case bool:
		if x {
			bw.str("true")
		} else {
			bw.str("false")
		}
	case int:
		bw.int(int64(x))
	case int64:
		bw.int(x)
	case simulator.Time:
		bw.int(int64(x))
	case float64:
		bw.str(strconv.FormatFloat(x, 'g', -1, 64))
	default:
		// Unknown types indicate a programming error at the emission
		// site; quote something recognizable rather than panic mid-export.
		bw.str(`"<unsupported>"`)
	}
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) str(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *errWriter) int(v int64) { e.str(strconv.FormatInt(v, 10)) }
