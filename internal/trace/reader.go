package trace

// Reader side of the trace formats: parse a Chrome trace_event document or
// a JSONL stream (both written by this package) back into typed Events, so
// offline tooling (cmd/traceanalyze) works on the same structures the
// control loop emitted instead of raw JSON maps.
//
// Arg order is preserved exactly: events are decoded token-by-token with
// encoding/json's streaming Decoder rather than into Go maps, whose
// iteration order would destroy the writer's deterministic arg ordering.
//
// Numeric fidelity: the writers print integers without a decimal point and
// floats in shortest round-trip form, so the reader maps JSON numbers
// without '.', 'e', or 'E' to int64 and everything else to float64. An
// arg emitted as a Go int (or simulator.Time) therefore reads back as
// int64, and a float64 holding an integral value reads back as int64 too —
// the formats do not distinguish them. ArgInt/ArgFloat on Event absorb
// that for consumers.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"epajsrm/internal/simulator"
)

// Meta carries the metadata records of a Chrome export: track (process)
// and thread display names.
type Meta struct {
	ProcessNames map[int]string
	ThreadNames  map[int]string
}

// Read parses a trace in either supported form, sniffing the format: a
// document whose first value is an object with a traceEvents key is Chrome
// trace_event JSON, anything else is treated as JSONL. The returned Meta
// is empty (never nil) for JSONL input, which carries no metadata records.
func Read(r io.Reader) ([]Event, *Meta, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(64)
	if bytes.HasPrefix(bytes.TrimLeft(head, " \t\r\n"), []byte(`{"traceEvents"`)) {
		return ReadChrome(br)
	}
	evs, err := ReadJSONL(br)
	return evs, &Meta{ProcessNames: map[int]string{}, ThreadNames: map[int]string{}}, err
}

// ReadChrome parses a Chrome trace_event document (the object form with a
// traceEvents array) into events plus the metadata name records. Events
// are returned in document order, which for files written by WriteChrome
// is the stable export order.
func ReadChrome(r io.Reader) ([]Event, *Meta, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	meta := &Meta{ProcessNames: map[int]string{}, ThreadNames: map[int]string{}}
	if err := expectDelim(dec, '{'); err != nil {
		return nil, nil, fmt.Errorf("trace: not a Chrome trace document: %w", err)
	}
	var events []Event
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return nil, nil, err
		}
		key, _ := keyTok.(string)
		if key != "traceEvents" {
			// Unknown top-level field (displayTimeUnit etc.): skip its value.
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return nil, nil, err
			}
			continue
		}
		if err := expectDelim(dec, '['); err != nil {
			return nil, nil, err
		}
		for dec.More() {
			ev, err := decodeEvent(dec)
			if err != nil {
				return nil, nil, err
			}
			if ev.Ph == "M" {
				name := ""
				if len(ev.Args) > 0 {
					name, _ = ev.Args[0].Val.(string)
				}
				switch ev.Name {
				case "process_name":
					meta.ProcessNames[ev.Pid] = name
				case "thread_name":
					meta.ThreadNames[ev.Tid] = name
				}
				continue
			}
			events = append(events, ev)
		}
		if err := expectDelim(dec, ']'); err != nil {
			return nil, nil, err
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, nil, err
	}
	return events, meta, nil
}

// ReadJSONL parses a stream of one-JSON-object-per-line events (the
// WriteJSONL form; blank lines are tolerated) in input order.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var events []Event
	for {
		ev, err := decodeEvent(dec)
		if errors.Is(err, io.EOF) {
			return events, nil
		}
		if err != nil {
			return nil, err
		}
		if ev.Ph == "M" {
			continue
		}
		events = append(events, ev)
	}
}

// ArgInt returns the named arg as an int64 (converting a float form) and
// whether it was present.
func (e *Event) ArgInt(key string) (int64, bool) {
	for _, a := range e.Args {
		if a.Key != key {
			continue
		}
		switch v := a.Val.(type) {
		case int64:
			return v, true
		case int:
			return int64(v), true
		case simulator.Time:
			return int64(v), true
		case float64:
			return int64(v), true
		}
		return 0, false
	}
	return 0, false
}

// ArgFloat returns the named arg as a float64 (converting an integer form)
// and whether it was present.
func (e *Event) ArgFloat(key string) (float64, bool) {
	for _, a := range e.Args {
		if a.Key != key {
			continue
		}
		switch v := a.Val.(type) {
		case float64:
			return v, true
		case int64:
			return float64(v), true
		case int:
			return float64(v), true
		case simulator.Time:
			return float64(v), true
		}
		return 0, false
	}
	return 0, false
}

// ArgString returns the named arg as a string and whether it was present
// with that type.
func (e *Event) ArgString(key string) (string, bool) {
	for _, a := range e.Args {
		if a.Key == key {
			s, ok := a.Val.(string)
			return s, ok
		}
	}
	return "", false
}

// ArgBool returns the named arg as a bool and whether it was present with
// that type.
func (e *Event) ArgBool(key string) (bool, bool) {
	for _, a := range e.Args {
		if a.Key == key {
			b, ok := a.Val.(bool)
			return b, ok
		}
	}
	return false, false
}

// decodeEvent consumes one event object from dec (which must use
// UseNumber) and returns it with arg order preserved.
func decodeEvent(dec *json.Decoder) (Event, error) {
	var ev Event
	if err := expectDelim(dec, '{'); err != nil {
		return ev, err
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return ev, err
		}
		key, ok := keyTok.(string)
		if !ok {
			return ev, fmt.Errorf("trace: event key is %T, want string", keyTok)
		}
		if key == "args" {
			if err := expectDelim(dec, '{'); err != nil {
				return ev, err
			}
			for dec.More() {
				akTok, err := dec.Token()
				if err != nil {
					return ev, err
				}
				ak, _ := akTok.(string)
				av, err := decodeScalar(dec)
				if err != nil {
					return ev, fmt.Errorf("trace: arg %q: %w", ak, err)
				}
				ev.Args = append(ev.Args, Arg{Key: ak, Val: av})
			}
			if err := expectDelim(dec, '}'); err != nil {
				return ev, err
			}
			continue
		}
		v, err := decodeScalar(dec)
		if err != nil {
			return ev, fmt.Errorf("trace: field %q: %w", key, err)
		}
		switch key {
		case "ph":
			ev.Ph, _ = v.(string)
		case "name":
			ev.Name, _ = v.(string)
		case "pid":
			ev.Pid = int(asInt(v))
		case "tid":
			ev.Tid = int(asInt(v))
		case "ts":
			ev.Ts = simulator.Time(asInt(v))
		case "dur":
			ev.Dur = simulator.Time(asInt(v))
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return ev, err
	}
	return ev, nil
}

// decodeScalar reads one scalar JSON value: string, bool, null, or number
// (int64 when the literal has no fraction/exponent, float64 otherwise).
func decodeScalar(dec *json.Decoder) (any, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	switch v := tok.(type) {
	case string:
		return v, nil
	case bool:
		return v, nil
	case nil:
		return nil, nil
	case json.Number:
		s := v.String()
		if !strings.ContainsAny(s, ".eE") {
			if n, err := v.Int64(); err == nil {
				return n, nil
			}
		}
		f, err := v.Float64()
		return f, err
	case json.Delim:
		return nil, fmt.Errorf("unexpected %v, want scalar", v)
	default:
		return nil, fmt.Errorf("unexpected token %T", tok)
	}
}

func asInt(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case float64:
		return int64(x)
	}
	return 0
}

func expectDelim(dec *json.Decoder, d rune) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if dl, ok := tok.(json.Delim); !ok || rune(dl) != d {
		return fmt.Errorf("trace: unexpected token %v, want %q", tok, d)
	}
	return nil
}
