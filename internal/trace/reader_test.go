package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"epajsrm/internal/simulator"
)

// normalize maps an emitted event onto what the reader must return: the
// wire formats print integers (and integral floats) without a decimal
// point, so int, int64, and simulator.Time args — and float64 args holding
// integral values — all read back as int64.
func normalize(evs []Event) []Event {
	out := make([]Event, len(evs))
	for i, e := range evs {
		ne := e
		ne.Args = nil
		for _, a := range e.Args {
			switch v := a.Val.(type) {
			case int:
				a.Val = int64(v)
			case simulator.Time:
				a.Val = int64(v)
			case float64:
				if v == float64(int64(v)) {
					a.Val = int64(v)
				}
			}
			ne.Args = append(ne.Args, a)
		}
		out[i] = ne
	}
	return out
}

// randomTracer emits a deterministic pseudo-random event mix covering all
// phases, arg types, and tracks.
func randomTracer(seed int64) *Tracer {
	rng := rand.New(rand.NewSource(seed))
	tr := New()
	tr.SetThreadName(7, "job 7 (lrz)")
	for i := 0; i < 200; i++ {
		ts := simulator.Time(rng.Intn(100000))
		args := []Arg{
			{Key: "idx", Val: int64(i)},
			{Key: "frac", Val: float64(rng.Intn(1000))/7 + 0.5},
			{Key: "tag", Val: fmt.Sprintf("app-%d", rng.Intn(5))},
			{Key: "ok", Val: rng.Intn(2) == 0},
		}
		switch rng.Intn(3) {
		case 0:
			tr.Span(PidJobs, rng.Intn(8), "run", ts, ts+simulator.Time(rng.Intn(5000)), args...)
		case 1:
			tr.Instant(PidSched, 0, "skip-reason", ts, args...)
		case 2:
			tr.Counter(PidPower, "it_power_w", ts, float64(rng.Intn(100000))/3)
		}
	}
	return tr
}

// TestReaderRoundTrip is the round-trip property: writer -> reader yields
// identical typed events — same order, same phases, same ordered args —
// for both the Chrome and JSONL forms, across several random event mixes.
func TestReaderRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr := randomTracer(seed)
		want := normalize(tr.Events())

		var chrome bytes.Buffer
		if err := tr.WriteChrome(&chrome); err != nil {
			t.Fatal(err)
		}
		got, meta, err := ReadChrome(bytes.NewReader(chrome.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: ReadChrome: %v", seed, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: chrome round-trip mismatch\nfirst got  %+v\nfirst want %+v", seed, first(got), first(want))
		}
		if meta.ProcessNames[PidJobs] != "jobs" || meta.ThreadNames[7] != "job 7 (lrz)" {
			t.Fatalf("seed %d: metadata lost: %+v", seed, meta)
		}

		var jsonl bytes.Buffer
		if err := tr.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		got2, err := ReadJSONL(bytes.NewReader(jsonl.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: ReadJSONL: %v", seed, err)
		}
		if !reflect.DeepEqual(got2, want) {
			t.Fatalf("seed %d: jsonl round-trip mismatch", seed)
		}
	}
}

func first(evs []Event) Event {
	if len(evs) == 0 {
		return Event{}
	}
	return evs[0]
}

// TestReaderOrderedArgsPreserved pins the ordered-args contract with a
// hand-built case whose arg order differs from the sorted key order.
func TestReaderOrderedArgsPreserved(t *testing.T) {
	tr := New()
	tr.Instant(PidSched, 0, "pick", 10,
		Arg{Key: "zeta", Val: int64(1)},
		Arg{Key: "alpha", Val: "second"},
		Arg{Key: "mid", Val: 2.75})
	var b bytes.Buffer
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	keys := []string{}
	for _, a := range evs[0].Args {
		keys = append(keys, a.Key)
	}
	want := []string{"zeta", "alpha", "mid"}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("arg order = %v, want %v", keys, want)
	}
	if v, ok := evs[0].ArgFloat("mid"); !ok || v != 2.75 {
		t.Fatalf("mid = %v (%v)", v, ok)
	}
}

// TestReadSniffsFormat drives the auto-detecting entry point on both forms.
func TestReadSniffsFormat(t *testing.T) {
	tr := randomTracer(3)
	want := normalize(tr.Events())

	var chrome, jsonl bytes.Buffer
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"chrome": chrome.Bytes(), "jsonl": jsonl.Bytes()} {
		got, meta, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if meta == nil {
			t.Fatalf("%s: nil meta", name)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: events differ from writer's", name)
		}
	}
}

// TestSubscribeStreamsAndDrops pins the bounded non-blocking contract: a
// full subscriber buffer drops (and counts) instead of blocking emission.
func TestSubscribeStreamsAndDrops(t *testing.T) {
	tr := New()
	ch, cancel := tr.Subscribe(2)
	defer cancel()
	for i := 0; i < 10; i++ {
		tr.Instant(PidSched, 0, "tick", simulator.Time(i))
	}
	if got := tr.Dropped(); got != 8 {
		t.Fatalf("dropped = %d, want 8", got)
	}
	e1, e2 := <-ch, <-ch
	if e1.Ts != 0 || e2.Ts != 1 {
		t.Fatalf("delivered order = %v, %v; want ts 0, 1", e1.Ts, e2.Ts)
	}
	// The buffer is free again: the next emission is delivered, not dropped.
	tr.Instant(PidSched, 0, "tick", 99)
	if e := <-ch; e.Ts != 99 {
		t.Fatalf("post-drain event ts = %v, want 99", e.Ts)
	}
	if got := tr.Dropped(); got != 8 {
		t.Fatalf("dropped moved to %d after drain", got)
	}
	cancel()
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	// Emission after cancel is a no-op for the subscriber, not a panic.
	tr.Instant(PidSched, 0, "tick", 100)
	cancel() // idempotent
}
