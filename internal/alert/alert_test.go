package alert

import (
	"strings"
	"testing"

	"epajsrm/internal/metrics"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
	"epajsrm/internal/tsdb"
)

// drive feeds a gauge series v(t) and evaluates the watchdog at each
// 1-minute step, returning the watchdog and its log.
func drive(t *testing.T, rs Rules, steps int, v func(step int) float64) (*Watchdog, string) {
	t.Helper()
	reg := metrics.New()
	g := reg.Gauge("sli")
	st := tsdb.New(reg, tsdb.Config{})
	w, err := New(st, reg, rs, simulator.Time(steps)*simulator.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= steps; i++ {
		g.Set(v(i))
		now := simulator.Time(i) * simulator.Minute
		st.Sample(now)
		w.Eval(now)
	}
	var b strings.Builder
	if err := w.WriteLog(&b); err != nil {
		t.Fatal(err)
	}
	return w, b.String()
}

func TestThresholdForDuration(t *testing.T) {
	rs := Rules{Rules: []Rule{{
		Name: "hot", Kind: "threshold", Metric: "sli",
		Agg: "last", Op: ">", Value: 100, ForS: int64(3 * simulator.Minute),
	}}}
	// Breach from step 5 on: pending at 5, fires at 8 (3 min held).
	w, log := drive(t, rs, 20, func(i int) float64 {
		if i >= 5 {
			return 200
		}
		return 50
	})
	first, ok := w.FirstFire("hot")
	if !ok || first != 8*simulator.Minute {
		t.Fatalf("first fire = %v ok=%v, want 8m", first, ok)
	}
	if !strings.Contains(log, "t=480 FIRING rule=hot") {
		t.Fatalf("log missing fire line:\n%s", log)
	}
	if w.MostRecentFiring() != "hot" {
		t.Fatalf("MostRecentFiring = %q, want hot", w.MostRecentFiring())
	}
}

func TestThresholdBlipShorterThanForNeverFires(t *testing.T) {
	rs := Rules{Rules: []Rule{{
		Name: "hot", Kind: "threshold", Metric: "sli",
		Agg: "last", Op: ">", Value: 100, ForS: int64(5 * simulator.Minute),
	}}}
	w, log := drive(t, rs, 20, func(i int) float64 {
		if i >= 5 && i <= 7 { // 3-minute blip < 5-minute for-duration
			return 200
		}
		return 50
	})
	if _, fired := w.FirstFire("hot"); fired {
		t.Fatalf("blip fired:\n%s", log)
	}
}

func TestResolveAndRefire(t *testing.T) {
	rs := Rules{Rules: []Rule{{
		Name: "hot", Kind: "threshold", Metric: "sli",
		Agg: "last", Op: ">", Value: 100,
	}}}
	w, log := drive(t, rs, 30, func(i int) float64 {
		if (i >= 5 && i <= 10) || i >= 20 {
			return 200
		}
		return 50
	})
	if !strings.Contains(log, "RESOLVED rule=hot after_s=360") {
		t.Fatalf("log missing resolution:\n%s", log)
	}
	if n := strings.Count(log, "FIRING rule=hot"); n != 2 {
		t.Fatalf("fires = %d, want 2:\n%s", n, log)
	}
	if w.FiringCount() != 1 {
		t.Fatalf("FiringCount = %d, want 1 (still firing at end)", w.FiringCount())
	}
}

func TestBurnRateFiresEarlierThanPlainThreshold(t *testing.T) {
	// Budget: 1000 unit·min over 10 h. A consumption step to 10× the
	// steady rate starts at minute 60. The plain threshold waits until
	// total consumption actually crosses the budget (~minute 114); the
	// burn-rate rule detects the elevated rate once its slow window is
	// half-saturated (~minute 77).
	rs := Rules{Rules: []Rule{
		{
			Name: "burn", Kind: "burn_rate", Metric: "sli", Consume: "integral_min",
			Budget: 1000, Burn: 6,
			FastWindowS: int64(5 * simulator.Minute),
			SlowWindowS: int64(30 * simulator.Minute),
		},
		{
			Name: "thresh", Kind: "threshold", Metric: "sli",
			Agg: "integral_min", WindowS: int64(10 * simulator.Hour),
			Op: ">", Value: 1000,
		},
	}}
	steady := 1000.0 / 600 // on-budget watts: budget/minutes
	w, _ := drive(t, rs, 600, func(i int) float64 {
		if i > 60 {
			return 10 * steady
		}
		return steady
	})
	bFirst, bOK := w.FirstFire("burn")
	tFirst, tOK := w.FirstFire("thresh")
	if !bOK || !tOK {
		t.Fatalf("rules did not fire: burn=%v thresh=%v", bOK, tOK)
	}
	if bFirst >= tFirst {
		t.Fatalf("burn-rate fired at %v, not earlier than threshold at %v", bFirst, tFirst)
	}
}

func TestPriceWeightedAllotment(t *testing.T) {
	// Peak price 3× off-peak: the off-peak hours get proportionally less
	// budget, so identical consumption burns faster off-peak.
	rs := Rules{
		HorizonS: int64(simulator.Day),
		Tariff: []Band{
			{StartHour: 0, PricePerKWh: 1},
			{StartHour: 8, PricePerKWh: 3},
			{StartHour: 22, PricePerKWh: 1},
		},
		Rules: []Rule{{
			Name: "b", Kind: "burn_rate", Metric: "sli", Consume: "integral_min",
			Budget: 1, Burn: 1, FastWindowS: 60, SlowWindowS: 120,
		}},
	}
	reg := metrics.New()
	st := tsdb.New(reg, tsdb.Config{})
	w, err := New(st, reg, rs, simulator.Day)
	if err != nil {
		t.Fatal(err)
	}
	offPeak := w.allotment(&w.rules[0], 0, simulator.Hour)               // hour 0, price 1
	peak := w.allotment(&w.rules[0], 8*simulator.Hour, 9*simulator.Hour) // hour 8, price 3
	if peak <= offPeak {
		t.Fatalf("peak allotment %g not above off-peak %g", peak, offPeak)
	}
	if ratio := peak / offPeak; ratio < 2.99 || ratio > 3.01 {
		t.Fatalf("peak/off-peak allotment ratio = %g, want 3", ratio)
	}
	// Whole-horizon allotment is the whole budget.
	if total := w.allotment(&w.rules[0], 0, simulator.Day); total < 0.999 || total > 1.001 {
		t.Fatalf("full-horizon allotment = %g, want 1", total)
	}
}

func TestLogByteIdenticalAcrossRuns(t *testing.T) {
	rs := Rules{Rules: []Rule{
		{Name: "hot", Kind: "threshold", Metric: "sli", Agg: "mean",
			WindowS: int64(5 * simulator.Minute), Op: ">", Value: 100, ForS: int64(2 * simulator.Minute)},
		{Name: "burn", Kind: "burn_rate", Metric: "sli", Consume: "integral_min",
			Budget: 5000, Burn: 2, FastWindowS: int64(5 * simulator.Minute), SlowWindowS: int64(20 * simulator.Minute)},
	}}
	sig := func(i int) float64 { return float64((i * i * 37) % 400) }
	_, a := drive(t, rs, 120, sig)
	_, b := drive(t, rs, 120, sig)
	if a == "" {
		t.Fatal("scenario produced no alert traffic; test is vacuous")
	}
	if a != b {
		t.Fatalf("alert logs differ across identical runs:\n--- a\n%s--- b\n%s", a, b)
	}
}

func TestWatchdogMetricsAndTraceEvents(t *testing.T) {
	reg := metrics.New()
	g := reg.Gauge("sli")
	st := tsdb.New(reg, tsdb.Config{})
	rs := Rules{Rules: []Rule{{Name: "hot", Kind: "threshold", Metric: "sli", Agg: "last", Op: ">", Value: 1}}}
	w, err := New(st, reg, rs, simulator.Hour)
	if err != nil {
		t.Fatal(err)
	}
	w.Tr = trace.New()
	for i := 1; i <= 10; i++ {
		g.Set(float64(i%2) * 5) // alternates breach/clear each minute
		now := simulator.Time(i) * simulator.Minute
		st.Sample(now)
		w.Eval(now)
	}
	if v := reg.Value("alerts.fired"); v != 5 {
		t.Fatalf("alerts.fired = %g, want 5", v)
	}
	if v := reg.Value("alerts.resolved"); v != 5 {
		t.Fatalf("alerts.resolved = %g, want 5", v)
	}
	if v := reg.Value("alert.firing.hot"); v != 0 {
		t.Fatalf("alert.firing.hot = %g, want 0 (resolved at end)", v)
	}
	var firings, spans int
	for _, e := range w.Tr.Events() {
		if e.Pid != trace.PidAlerts {
			continue
		}
		switch {
		case e.Name == "alert_firing":
			firings++
		case e.Ph == "X":
			spans++
		}
	}
	if firings != 5 || spans != 5 {
		t.Fatalf("trace: %d firings, %d episode spans, want 5 and 5", firings, spans)
	}
}

func TestFinishFoldsOpenEpisodes(t *testing.T) {
	rs := Rules{Rules: []Rule{{Name: "hot", Kind: "threshold", Metric: "sli", Agg: "last", Op: ">", Value: 1}}}
	w, _ := drive(t, rs, 10, func(i int) float64 { return 5 })
	w.Finish(20 * simulator.Minute)
	sum := w.Summary()
	if len(sum.Rows) != 1 || sum.Rows[0][6] != "FIRING" {
		t.Fatalf("summary = %+v, want single FIRING row", sum.Rows)
	}
	// Fired at minute 1, finished at 20 → 19 minutes total firing.
	if sum.Rows[0][5] != (19 * simulator.Minute).String() {
		t.Fatalf("total firing = %q, want %q", sum.Rows[0][5], (19 * simulator.Minute).String())
	}
}

func TestValidateRejectsBadRules(t *testing.T) {
	bad := []Rules{
		{},
		{Rules: []Rule{{Kind: "threshold", Metric: "m", Op: ">"}}},                                                                 // no name
		{Rules: []Rule{{Name: "a", Kind: "nope", Metric: "m"}}},                                                                    // bad kind
		{Rules: []Rule{{Name: "a", Kind: "threshold", Metric: "m", Op: "!"}}},                                                      // bad op
		{Rules: []Rule{{Name: "a", Kind: "burn_rate", Metric: "m", Budget: 1, Burn: 1, FastWindowS: 10}}},                          // no slow window
		{Rules: []Rule{{Name: "a", Kind: "threshold", Metric: "m", Op: ">"}, {Name: "a", Kind: "budget", Metric: "m", Budget: 1}}}, // dup
	}
	for i, rs := range bad {
		if err := rs.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
}
