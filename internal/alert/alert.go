// Package alert is a declarative SLO watchdog over the tsdb metric
// history. Rules are loaded from JSON and evaluated in virtual time on
// the store's sampling cadence; three rule kinds cover the survey's
// operating conditions:
//
//   - threshold: aggregate one series over a trailing window, compare
//     against a limit, and require the breach to hold for a for-duration
//     before firing (the classic "p99 wait > 1 h for 10 min" shape).
//   - burn_rate: Google-SRE-style multi-window budget burn. The rule
//     tracks cumulative consumption of a budget (cap-violation
//     watt·minutes, energy joules) and fires when both a fast and a slow
//     trailing window are consuming faster than `burn` times the budget's
//     steady allotment rate. The fast window catches step changes early;
//     the slow window suppresses blips.
//   - budget: cumulative consumption since t=0 compared against the
//     allotted budget curve — the "tenant has already overspent" alarm.
//
// Budget allotment is price-weighted when the rules file carries a
// tariff: the curve B(t) = Budget·∫₀ᵗ price/∫₀ᴴ price allots more budget
// to cheap hours, mirroring the ESP contracts surveyed in the paper
// (flat tariff ⇒ the familiar linear B·t/H).
//
// Determinism contract: evaluation reads only the tsdb store and virtual
// time — no wall clock, no randomness, no map iteration in evaluation
// order — so same-seed runs emit byte-identical alert logs, and a
// watchdog observes without steering (attaching one never changes the
// simulation report).
package alert

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"epajsrm/internal/esp"
	"epajsrm/internal/metrics"
	"epajsrm/internal/report"
	"epajsrm/internal/simulator"
	"epajsrm/internal/trace"
	"epajsrm/internal/tsdb"
)

// Rule is one declarative SLO rule.
type Rule struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"`               // threshold | burn_rate | budget
	Metric   string `json:"metric"`             // tsdb series name
	Severity string `json:"severity,omitempty"` // free-form label (page, ticket, …)

	// threshold fields.
	Agg     string  `json:"agg,omitempty"` // last | mean | max | sum | integral_min
	WindowS int64   `json:"window_s,omitempty"`
	Op      string  `json:"op,omitempty"` // > | >= | < | <=
	Value   float64 `json:"value,omitempty"`
	ForS    int64   `json:"for_s,omitempty"`

	// burn_rate / budget fields.
	Budget      float64 `json:"budget,omitempty"`  // total allotment over the horizon
	Consume     string  `json:"consume,omitempty"` // sum | integral_min (default sum)
	FastWindowS int64   `json:"fast_window_s,omitempty"`
	SlowWindowS int64   `json:"slow_window_s,omitempty"`
	Burn        float64 `json:"burn,omitempty"` // firing factor over the steady rate
}

// Band mirrors esp.TariffBand in the rules file.
type Band struct {
	StartHour   int     `json:"start_hour"`
	PricePerKWh float64 `json:"price_per_kwh"`
}

// Rules is the top-level rules file.
type Rules struct {
	// HorizonS is the budget horizon in virtual seconds; 0 defers to the
	// horizon the caller passes to New (the run length).
	HorizonS int64  `json:"horizon_s,omitempty"`
	Tariff   []Band `json:"tariff,omitempty"`
	Rules    []Rule `json:"rules"`
}

// LoadRules reads and validates a rules file.
func LoadRules(path string) (Rules, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Rules{}, err
	}
	var rs Rules
	if err := json.Unmarshal(b, &rs); err != nil {
		return Rules{}, fmt.Errorf("alert: parse %s: %w", path, err)
	}
	if err := rs.Validate(); err != nil {
		return Rules{}, fmt.Errorf("alert: %s: %w", path, err)
	}
	return rs, nil
}

// Validate checks structural sanity so misconfigurations surface at load
// time, not as silently-never-firing rules.
func (rs Rules) Validate() error {
	if len(rs.Rules) == 0 {
		return fmt.Errorf("no rules")
	}
	seen := map[string]bool{}
	for i, r := range rs.Rules {
		if r.Name == "" {
			return fmt.Errorf("rule %d: missing name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("rule %q: duplicate name", r.Name)
		}
		seen[r.Name] = true
		if r.Metric == "" {
			return fmt.Errorf("rule %q: missing metric", r.Name)
		}
		switch r.Kind {
		case "threshold":
			switch r.Agg {
			case "", "last", "mean", "max", "sum", "integral_min":
			default:
				return fmt.Errorf("rule %q: unknown agg %q", r.Name, r.Agg)
			}
			switch r.Op {
			case ">", ">=", "<", "<=":
			default:
				return fmt.Errorf("rule %q: unknown op %q", r.Name, r.Op)
			}
		case "burn_rate":
			if r.Budget <= 0 {
				return fmt.Errorf("rule %q: burn_rate needs budget > 0", r.Name)
			}
			if r.Burn <= 0 {
				return fmt.Errorf("rule %q: burn_rate needs burn > 0", r.Name)
			}
			if r.FastWindowS <= 0 || r.SlowWindowS <= r.FastWindowS {
				return fmt.Errorf("rule %q: need 0 < fast_window_s < slow_window_s", r.Name)
			}
		case "budget":
			if r.Budget <= 0 {
				return fmt.Errorf("rule %q: budget kind needs budget > 0", r.Name)
			}
		default:
			return fmt.Errorf("rule %q: unknown kind %q", r.Name, r.Kind)
		}
		switch r.Consume {
		case "", "sum", "integral_min":
		default:
			return fmt.Errorf("rule %q: unknown consume %q", r.Name, r.Consume)
		}
	}
	if len(rs.Tariff) > 0 {
		bands := make([]esp.TariffBand, len(rs.Tariff))
		for i, b := range rs.Tariff {
			bands[i] = esp.TariffBand{StartHour: b.StartHour, PricePerKWh: b.PricePerKWh}
		}
		if _, err := esp.NewTariff(bands...); err != nil {
			return err
		}
	}
	return nil
}

// ruleState is the per-rule evaluation state machine.
type ruleState struct {
	pending      bool
	pendingSince simulator.Time
	firing       bool
	firingSince  simulator.Time
	fires        int
	everFired    bool
	firstFire    simulator.Time
	totalFiring  simulator.Time
	gauge        *metrics.Gauge
}

// Watchdog evaluates a rule set against a tsdb store in virtual time.
// Evaluation runs under the simulation lock (driven by the same engine
// event that samples the store), so it needs no internal mutex; the
// read-side accessors are only meaningful between evaluations or after
// the run under the ops lock.
type Watchdog struct {
	Tr *trace.Tracer // optional; set by core.Manager.AttachTracer

	hist    *tsdb.Store
	rules   []Rule
	horizon simulator.Time
	tariff  *esp.Tariff // nil ⇒ flat allotment
	st      []ruleState
	log     []byte
	fired   *metrics.Counter
	resolvd *metrics.Counter
}

// New builds a watchdog over hist, registering its alerting metrics in
// reg (ALERTS-style per-rule firing gauges plus fired/resolved
// counters). horizon is the run length used for budget allotment when
// the rules file does not pin HorizonS.
func New(hist *tsdb.Store, reg *metrics.Registry, rs Rules, horizon simulator.Time) (*Watchdog, error) {
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	w := &Watchdog{hist: hist, rules: rs.Rules, horizon: horizon}
	if rs.HorizonS > 0 {
		w.horizon = simulator.Time(rs.HorizonS)
	}
	if w.horizon <= 0 {
		return nil, fmt.Errorf("alert: no budget horizon (set horizon_s or pass the run length)")
	}
	if len(rs.Tariff) > 0 {
		bands := make([]esp.TariffBand, len(rs.Tariff))
		for i, b := range rs.Tariff {
			bands[i] = esp.TariffBand{StartHour: b.StartHour, PricePerKWh: b.PricePerKWh}
		}
		t, err := esp.NewTariff(bands...)
		if err != nil {
			return nil, err
		}
		w.tariff = t
	}
	w.st = make([]ruleState, len(w.rules))
	if reg != nil {
		w.fired = reg.Counter("alerts.fired")
		w.resolvd = reg.Counter("alerts.resolved")
		for i, r := range w.rules {
			w.st[i].gauge = reg.Gauge("alert.firing." + r.Name)
		}
	}
	return w, nil
}

// priceIntegral is ∫₀ᵗ price(s) ds under the watchdog's tariff (price 1
// when flat), integrated over whole virtual hours plus the partial hour.
func (w *Watchdog) priceIntegral(t simulator.Time) float64 {
	if t <= 0 {
		return 0
	}
	if w.tariff == nil {
		return float64(t)
	}
	var sum float64
	hours := t / simulator.Hour
	for h := simulator.Time(0); h < hours; h++ {
		sum += w.tariff.PriceAt(h*simulator.Hour) * float64(simulator.Hour)
	}
	if rem := t % simulator.Hour; rem > 0 {
		sum += w.tariff.PriceAt(hours*simulator.Hour) * float64(rem)
	}
	return sum
}

// allotment is the budget share granted to the window (from, to] by the
// price-weighted curve B(t) = Budget·PI(t)/PI(H).
func (w *Watchdog) allotment(r *Rule, from, to simulator.Time) float64 {
	if from < 0 {
		from = 0
	}
	total := w.priceIntegral(w.horizon)
	if total <= 0 {
		return 0
	}
	return r.Budget * (w.priceIntegral(to) - w.priceIntegral(from)) / total
}

// consumed aggregates a rule's consumption series over (from, to].
func (w *Watchdog) consumed(r *Rule, from, to simulator.Time) float64 {
	switch r.Consume {
	case "integral_min":
		v, _, _ := w.hist.Reduce(r.Metric, from, to, tsdb.OpIntegral)
		return v / 60 // unit·seconds → unit·minutes
	default: // sum of counter deltas
		v, _, _ := w.hist.Reduce(r.Metric, from, to, tsdb.OpSum)
		return v
	}
}

// eval computes one rule's condition at now and a detail string for the
// log line when it contributes to a transition.
func (w *Watchdog) eval(r *Rule, now simulator.Time) (bool, string) {
	switch r.Kind {
	case "threshold":
		win := simulator.Time(r.WindowS)
		if win <= 0 {
			win = w.hist.Step()
		}
		var v float64
		switch r.Agg {
		case "", "last":
			s, ok := w.hist.Last(r.Metric)
			if !ok {
				return false, ""
			}
			v = s.V
		case "mean":
			v, _, _ = w.hist.Reduce(r.Metric, now-win, now, tsdb.OpMean)
		case "max":
			v, _, _ = w.hist.Reduce(r.Metric, now-win, now, tsdb.OpMax)
		case "sum":
			v, _, _ = w.hist.Reduce(r.Metric, now-win, now, tsdb.OpSum)
		case "integral_min":
			v, _, _ = w.hist.Reduce(r.Metric, now-win, now, tsdb.OpIntegral)
			v /= 60
		}
		var cond bool
		switch r.Op {
		case ">":
			cond = v > r.Value
		case ">=":
			cond = v >= r.Value
		case "<":
			cond = v < r.Value
		case "<=":
			cond = v <= r.Value
		}
		return cond, "value=" + g(v) + " " + r.Op + " " + g(r.Value)
	case "burn_rate":
		fast, slow := simulator.Time(r.FastWindowS), simulator.Time(r.SlowWindowS)
		burnF := w.burn(r, now-fast, now)
		burnS := w.burn(r, now-slow, now)
		cond := burnF >= r.Burn && burnS >= r.Burn
		return cond, "burn_fast=" + g(burnF) + " burn_slow=" + g(burnS) + " threshold=" + g(r.Burn)
	case "budget":
		used := w.consumed(r, 0, now)
		allowed := w.allotment(r, 0, now)
		return used > allowed, "consumed=" + g(used) + " allotted=" + g(allowed)
	}
	return false, ""
}

// burn is the consumption rate over (from, to] relative to the budget's
// allotment for that window: 1.0 means exactly on budget.
func (w *Watchdog) burn(r *Rule, from, to simulator.Time) float64 {
	allowed := w.allotment(r, from, to)
	if allowed <= 0 {
		return 0
	}
	return w.consumed(r, from, to) / allowed
}

// g formats a float the way every deterministic renderer in this repo
// does: strconv 'g', shortest round-trip.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Eval runs every rule's state machine at virtual time now. It is driven
// by the manager's sampling event immediately after the store samples,
// so rules always see series that include `now`.
func (w *Watchdog) Eval(now simulator.Time) {
	for i := range w.rules {
		r := &w.rules[i]
		st := &w.st[i]
		cond, detail := w.eval(r, now)
		switch {
		case cond && st.firing:
			// still firing; nothing to log
		case cond && !st.firing:
			if !st.pending {
				st.pending, st.pendingSince = true, now
			}
			if now-st.pendingSince >= simulator.Time(r.ForS) {
				st.pending = false
				st.firing, st.firingSince = true, now
				st.fires++
				if !st.everFired {
					st.everFired, st.firstFire = true, now
				}
				if st.gauge != nil {
					st.gauge.Set(1)
				}
				if w.fired != nil {
					w.fired.Inc()
				}
				w.logf(now, "FIRING rule=%s kind=%s severity=%s %s", r.Name, r.Kind, sev(r), detail)
				if w.Tr != nil {
					w.Tr.Instant(trace.PidAlerts, i+1, "alert_firing", now,
						trace.Arg{Key: "rule", Val: r.Name},
						trace.Arg{Key: "kind", Val: r.Kind},
						trace.Arg{Key: "severity", Val: sev(r)},
						trace.Arg{Key: "detail", Val: detail})
				}
			}
		case !cond && st.firing:
			st.firing = false
			st.totalFiring += now - st.firingSince
			if st.gauge != nil {
				st.gauge.Set(0)
			}
			if w.resolvd != nil {
				w.resolvd.Inc()
			}
			w.logf(now, "RESOLVED rule=%s after_s=%d", r.Name, int64(now-st.firingSince))
			if w.Tr != nil {
				w.Tr.Instant(trace.PidAlerts, i+1, "alert_resolved", now,
					trace.Arg{Key: "rule", Val: r.Name})
				w.Tr.Span(trace.PidAlerts, i+1, "alert:"+r.Name, st.firingSince, now,
					trace.Arg{Key: "severity", Val: sev(r)})
			}
		case !cond && st.pending:
			st.pending = false
		}
	}
}

func sev(r *Rule) string {
	if r.Severity == "" {
		return "warn"
	}
	return r.Severity
}

// Finish closes open firing episodes at end of run: tail durations are
// folded into the totals and open episodes get their trace span, but the
// rules stay marked firing (the run ended degraded and the summary says
// so).
func (w *Watchdog) Finish(end simulator.Time) {
	for i := range w.rules {
		st := &w.st[i]
		if !st.firing {
			continue
		}
		st.totalFiring += end - st.firingSince
		if w.Tr != nil {
			w.Tr.Span(trace.PidAlerts, i+1, "alert:"+w.rules[i].Name, st.firingSince, end,
				trace.Arg{Key: "severity", Val: sev(&w.rules[i])},
				trace.Arg{Key: "open_at_end", Val: true})
		}
		st.firingSince = end // totals already folded; avoid double count
	}
}

func (w *Watchdog) logf(now simulator.Time, format string, args ...any) {
	w.log = append(w.log, fmt.Sprintf("t=%d %s\n", int64(now), fmt.Sprintf(format, args...))...)
}

// WriteLog writes the chronological alert event log: one line per
// firing/resolution, byte-identical across same-seed runs.
func (w *Watchdog) WriteLog(out io.Writer) error {
	_, err := out.Write(w.log)
	return err
}

// MostRecentFiring returns the name of the most recently fired rule
// still firing, or "".
func (w *Watchdog) MostRecentFiring() string {
	name, best := "", simulator.Time(-1)
	for i := range w.rules {
		st := &w.st[i]
		if st.firing && st.firingSince > best {
			name, best = w.rules[i].Name, st.firingSince
		}
	}
	return name
}

// FiringCount reports how many rules are currently firing.
func (w *Watchdog) FiringCount() int {
	n := 0
	for i := range w.st {
		if w.st[i].firing {
			n++
		}
	}
	return n
}

// FirstFire returns when a rule first fired; ok is false if it never
// did. Experiments use this to compare detection latency across rule
// kinds.
func (w *Watchdog) FirstFire(name string) (simulator.Time, bool) {
	for i := range w.rules {
		if w.rules[i].Name == name {
			return w.st[i].firstFire, w.st[i].everFired
		}
	}
	return 0, false
}

// Summary renders the per-rule SLO outcome table for -slo-report.
func (w *Watchdog) Summary() report.Table {
	t := report.Table{
		Title:  "SLO watchdog",
		Header: []string{"rule", "kind", "severity", "fires", "first fire", "total firing", "state"},
	}
	for i := range w.rules {
		r, st := &w.rules[i], &w.st[i]
		first, state := "-", "ok"
		if st.everFired {
			first = st.firstFire.String()
		}
		if st.firing {
			state = "FIRING"
		}
		t.Rows = append(t.Rows, []string{
			r.Name, r.Kind, sev(r),
			strconv.Itoa(st.fires), first, st.totalFiring.String(), state,
		})
	}
	return t
}
